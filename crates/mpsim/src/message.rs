//! Typed message payloads.
//!
//! Ranks exchange byte buffers; the [`Element`] trait describes fixed-width, `Copy` values
//! that can be written to and read from such buffers in little-endian order.  This is the
//! minimal machinery the CHAOS executor needs: data arrays in the paper hold REAL*8 /
//! INTEGER values (and, in the applications, small fixed-size records such as particle
//! velocities), all of which encode to a fixed number of bytes.
//!
//! The codec is hand-rolled instead of pulling in `serde`: the element types are tiny and
//! fixed-width, and keeping the encoding transparent makes the byte-count accounting used
//! by the cost model exact.

/// A fixed-width value that can travel in a message payload.
pub trait Element: Copy + Send + 'static {
    /// Encoded size in bytes.  Must be the same for every value of the type.
    const SIZE: usize;

    /// Append the little-endian encoding of `self` to `buf`.
    fn write_le(&self, buf: &mut Vec<u8>);

    /// Decode a value from exactly `Self::SIZE` bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() < Self::SIZE`.
    fn read_le(bytes: &[u8]) -> Self;

    /// Append the little-endian encodings of every value in `values` to `buf`.
    ///
    /// This is the bulk entry point of the codec: the default is the per-element loop,
    /// and primitives (plus fixed arrays of primitives) override it with chunk-level code
    /// the compiler can vectorise.  Overrides must stay byte-for-byte identical to the
    /// per-element default — the equivalence tests pin this for every implementation.
    #[inline]
    fn write_le_slice(values: &[Self], buf: &mut Vec<u8>) {
        buf.reserve(values.len() * Self::SIZE);
        for v in values {
            v.write_le(buf);
        }
    }

    /// Decode a whole payload, appending the elements to `out`.
    ///
    /// The bulk counterpart of [`Element::read_le`]: the default is the per-element loop;
    /// overrides must decode exactly what the default decodes.
    ///
    /// # Panics
    /// Panics if `bytes.len()` is not a multiple of `Self::SIZE`.
    #[inline]
    fn read_le_into(bytes: &[u8], out: &mut Vec<Self>) {
        assert!(
            bytes.len().is_multiple_of(Self::SIZE),
            "payload length {} is not a multiple of element size {}",
            bytes.len(),
            Self::SIZE
        );
        out.reserve(bytes.len() / Self::SIZE);
        for chunk in bytes.chunks_exact(Self::SIZE) {
            out.push(Self::read_le(chunk));
        }
    }
}

macro_rules! impl_element_primitive {
    ($($t:ty),* $(,)?) => {
        $(
            impl Element for $t {
                const SIZE: usize = std::mem::size_of::<$t>();

                #[inline]
                fn write_le(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }

                #[inline]
                fn read_le(bytes: &[u8]) -> Self {
                    let mut raw = [0u8; std::mem::size_of::<$t>()];
                    raw.copy_from_slice(&bytes[..std::mem::size_of::<$t>()]);
                    <$t>::from_le_bytes(raw)
                }

                #[inline]
                fn write_le_slice(values: &[Self], buf: &mut Vec<u8>) {
                    const S: usize = std::mem::size_of::<$t>();
                    // Resize once, then fill fixed-width lanes: on little-endian targets
                    // `to_le_bytes` is the identity and the loop compiles to a straight
                    // copy the autovectoriser handles.
                    let start = buf.len();
                    buf.resize(start + values.len() * S, 0);
                    for (dst, v) in buf[start..].chunks_exact_mut(S).zip(values) {
                        dst.copy_from_slice(&v.to_le_bytes());
                    }
                }

                #[inline]
                fn read_le_into(bytes: &[u8], out: &mut Vec<Self>) {
                    const S: usize = std::mem::size_of::<$t>();
                    assert!(
                        bytes.len().is_multiple_of(S),
                        "payload length {} is not a multiple of element size {}",
                        bytes.len(),
                        S
                    );
                    out.reserve(bytes.len() / S);
                    for chunk in bytes.chunks_exact(S) {
                        let mut raw = [0u8; S];
                        raw.copy_from_slice(chunk);
                        out.push(<$t>::from_le_bytes(raw));
                    }
                }
            }
        )*
    };
}

impl_element_primitive!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl Element for usize {
    const SIZE: usize = 8;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&(*self as u64).to_le_bytes());
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&bytes[..8]);
        u64::from_le_bytes(raw) as usize
    }

    #[inline]
    fn write_le_slice(values: &[Self], buf: &mut Vec<u8>) {
        let start = buf.len();
        buf.resize(start + values.len() * 8, 0);
        for (dst, v) in buf[start..].chunks_exact_mut(8).zip(values) {
            dst.copy_from_slice(&(*v as u64).to_le_bytes());
        }
    }

    #[inline]
    fn read_le_into(bytes: &[u8], out: &mut Vec<Self>) {
        assert!(
            bytes.len().is_multiple_of(8),
            "payload length {} is not a multiple of element size 8",
            bytes.len()
        );
        out.reserve(bytes.len() / 8);
        for chunk in bytes.chunks_exact(8) {
            let mut raw = [0u8; 8];
            raw.copy_from_slice(chunk);
            out.push(u64::from_le_bytes(raw) as usize);
        }
    }
}

impl<T: Element, const N: usize> Element for [T; N] {
    const SIZE: usize = T::SIZE * N;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        for v in self {
            v.write_le(buf);
        }
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        std::array::from_fn(|i| T::read_le(&bytes[i * T::SIZE..]))
    }

    #[inline]
    fn write_le_slice(values: &[Self], buf: &mut Vec<u8>) {
        // `[[T; N]]` flattens to `[T]` with the same memory layout, so a slice of fixed
        // arrays encodes through the inner type's bulk path (vectorised for primitives).
        T::write_le_slice(values.as_flattened(), buf);
    }

    #[inline]
    fn read_le_into(bytes: &[u8], out: &mut Vec<Self>) {
        assert!(
            bytes.len().is_multiple_of(Self::SIZE),
            "payload length {} is not a multiple of element size {}",
            bytes.len(),
            Self::SIZE
        );
        out.reserve(bytes.len() / Self::SIZE);
        // Decode the flattened lane stream: every lane handed to `T::read_le` is an
        // exact `T::SIZE` chunk (not an unbounded tail slice as in the per-element
        // default), so the inner bounds checks vanish.  `std::array::from_fn` calls its
        // closure in ascending index order, which is what keeps the lane iterator and
        // the array slots aligned.
        for chunk in bytes.chunks_exact(Self::SIZE) {
            let mut lanes = chunk.chunks_exact(T::SIZE);
            out.push(std::array::from_fn(|_| {
                T::read_le(lanes.next().expect("flattened array lane missing"))
            }));
        }
    }
}

impl<A: Element, B: Element> Element for (A, B) {
    const SIZE: usize = A::SIZE + B::SIZE;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        self.0.write_le(buf);
        self.1.write_le(buf);
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        (A::read_le(bytes), B::read_le(&bytes[A::SIZE..]))
    }
}

impl<A: Element, B: Element, C: Element> Element for (A, B, C) {
    const SIZE: usize = A::SIZE + B::SIZE + C::SIZE;

    #[inline]
    fn write_le(&self, buf: &mut Vec<u8>) {
        self.0.write_le(buf);
        self.1.write_le(buf);
        self.2.write_le(buf);
    }

    #[inline]
    fn read_le(bytes: &[u8]) -> Self {
        (
            A::read_le(bytes),
            B::read_le(&bytes[A::SIZE..]),
            C::read_le(&bytes[A::SIZE + B::SIZE..]),
        )
    }
}

/// Implement [`Element`] for a plain struct whose fields are all `Element`s.
///
/// ```
/// use mpsim::impl_element_struct;
///
/// #[derive(Clone, Copy, Debug, PartialEq)]
/// struct Particle { x: f64, v: f64, cell: u32 }
/// impl_element_struct!(Particle { x: f64, v: f64, cell: u32 });
///
/// let p = Particle { x: 1.0, v: -2.0, cell: 7 };
/// let bytes = mpsim::message::encode_slice(&[p]);
/// assert_eq!(mpsim::message::decode_vec::<Particle>(&bytes), vec![p]);
/// ```
#[macro_export]
macro_rules! impl_element_struct {
    ($name:ident { $($field:ident : $fty:ty),+ $(,)? }) => {
        impl $crate::message::Element for $name {
            const SIZE: usize = 0 $(+ <$fty as $crate::message::Element>::SIZE)+;

            #[inline]
            fn write_le(&self, buf: &mut Vec<u8>) {
                $( $crate::message::Element::write_le(&self.$field, buf); )+
            }

            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                let mut offset = 0usize;
                $(
                    let $field = <$fty as $crate::message::Element>::read_le(&bytes[offset..]);
                    offset += <$fty as $crate::message::Element>::SIZE;
                )+
                let _ = offset;
                Self { $($field),+ }
            }
        }
    };
}

/// Encode a slice of elements into a contiguous byte buffer.
///
/// A thin wrapper over [`Element::write_le_slice`] (kept for tests, docs and callers that
/// want an owned buffer); the exchange engine and [`crate::Rank::send_slice`] use the bulk
/// hook directly on pooled buffers.
pub fn encode_slice<T: Element>(values: &[T]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * T::SIZE);
    T::write_le_slice(values, &mut buf);
    buf
}

/// Decode a byte buffer produced by [`encode_slice`] back into a vector of elements.
///
/// A thin wrapper over [`Element::read_le_into`] into a fresh vector; the exchange engine
/// decodes into pooled scratch buffers instead.
///
/// # Panics
/// Panics if `bytes.len()` is not a multiple of `T::SIZE`.
pub fn decode_vec<T: Element>(bytes: &[u8]) -> Vec<T> {
    let mut out = Vec::new();
    T::read_le_into(bytes, &mut out);
    out
}

/// A message in flight between two ranks.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub from: usize,
    /// Application-level tag used for selective receive.
    pub tag: u64,
    /// Encoded payload bytes.
    pub payload: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        let xs: Vec<f64> = vec![0.0, -1.5, 3.25, f64::MAX, f64::MIN_POSITIVE];
        assert_eq!(decode_vec::<f64>(&encode_slice(&xs)), xs);
        let ys: Vec<i32> = vec![0, -1, i32::MAX, i32::MIN, 42];
        assert_eq!(decode_vec::<i32>(&encode_slice(&ys)), ys);
        let zs: Vec<usize> = vec![0, 1, usize::MAX >> 1, 1234567];
        assert_eq!(decode_vec::<usize>(&encode_slice(&zs)), zs);
    }

    #[test]
    fn array_and_tuple_round_trip() {
        let xs: Vec<[f64; 3]> = vec![[1.0, 2.0, 3.0], [-0.5, 0.0, 9.75]];
        assert_eq!(decode_vec::<[f64; 3]>(&encode_slice(&xs)), xs);
        let ps: Vec<(u32, f64)> = vec![(7, 1.25), (0, -3.5)];
        assert_eq!(decode_vec::<(u32, f64)>(&encode_slice(&ps)), ps);
        let ts: Vec<(u32, f64, i64)> = vec![(7, 1.25, -9), (0, -3.5, 11)];
        assert_eq!(decode_vec::<(u32, f64, i64)>(&encode_slice(&ts)), ts);
    }

    #[test]
    fn struct_macro_round_trip() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64,
        }
        impl_element_struct!(P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64
        });

        let ps = vec![
            P {
                pos: [0.0, 1.0],
                vel: [2.0, -2.0],
                id: 3,
            },
            P {
                pos: [9.5, -8.25],
                vel: [0.0, 0.125],
                id: u64::MAX,
            },
        ];
        assert_eq!(P::SIZE, 40);
        assert_eq!(decode_vec::<P>(&encode_slice(&ps)), ps);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn decode_rejects_ragged_payload() {
        let bytes = vec![0u8; 7];
        let _ = decode_vec::<f64>(&bytes);
    }

    /// Pin the bulk codec byte-for-byte against the per-element hooks: any specialised
    /// `write_le_slice`/`read_le_into` must encode and decode exactly what the
    /// element-at-a-time loop does.
    fn assert_bulk_matches_per_element<T: Element + PartialEq + std::fmt::Debug>(values: &[T]) {
        // Encode: per-element reference vs bulk, including appending to a non-empty buffer
        // (the PackBuf case — bulk writes must not disturb earlier bytes).
        let mut reference = vec![0xAB, 0xCD];
        for v in values {
            v.write_le(&mut reference);
        }
        let mut bulk = vec![0xAB, 0xCD];
        T::write_le_slice(values, &mut bulk);
        assert_eq!(reference, bulk, "bulk encode diverged from per-element");

        // Decode: per-element reference vs bulk, appending after pre-existing elements.
        let payload = &bulk[2..];
        let decoded_ref: Vec<T> = payload.chunks_exact(T::SIZE).map(T::read_le).collect();
        let mut decoded_bulk: Vec<T> = Vec::new();
        T::read_le_into(payload, &mut decoded_bulk);
        assert_eq!(
            decoded_ref, decoded_bulk,
            "bulk decode diverged from per-element"
        );
        assert_eq!(decoded_bulk, values);
        let mut appended = decoded_ref.clone();
        T::read_le_into(payload, &mut appended);
        assert_eq!(appended.len(), 2 * values.len());
        assert_eq!(&appended[values.len()..], values);
    }

    #[test]
    fn bulk_codec_matches_per_element_for_primitives() {
        assert_bulk_matches_per_element::<u8>(&[0, 1, 0x7F, 0xFF]);
        assert_bulk_matches_per_element::<i8>(&[0, -1, i8::MIN, i8::MAX]);
        assert_bulk_matches_per_element::<u16>(&[0, 1, 0xBEEF, u16::MAX]);
        assert_bulk_matches_per_element::<i16>(&[0, -2, i16::MIN, i16::MAX]);
        assert_bulk_matches_per_element::<u32>(&[0, 7, 0xDEAD_BEEF, u32::MAX]);
        assert_bulk_matches_per_element::<i32>(&[0, -3, i32::MIN, i32::MAX]);
        assert_bulk_matches_per_element::<u64>(&[0, 11, u64::MAX]);
        assert_bulk_matches_per_element::<i64>(&[0, -5, i64::MIN, i64::MAX]);
        assert_bulk_matches_per_element::<usize>(&[0, 42, usize::MAX >> 1]);
        assert_bulk_matches_per_element::<f32>(&[0.0, -1.5, f32::MAX, f32::MIN_POSITIVE]);
        assert_bulk_matches_per_element::<f64>(&[0.0, -1.5, f64::MAX, f64::MIN_POSITIVE]);
    }

    #[test]
    fn bulk_codec_matches_per_element_for_arrays_and_tuples() {
        assert_bulk_matches_per_element::<[f64; 3]>(&[[1.0, 2.0, 3.0], [-0.5, 0.0, 9.75]]);
        assert_bulk_matches_per_element::<[u32; 4]>(&[[1, 2, 3, 4], [u32::MAX, 0, 7, 9]]);
        assert_bulk_matches_per_element::<[[f64; 2]; 2]>(&[[[1.0, 2.0], [3.0, 4.0]]]);
        assert_bulk_matches_per_element::<(u32, f64)>(&[(7, 1.25), (0, -3.5)]);
        assert_bulk_matches_per_element::<(u32, f64, i64)>(&[(7, 1.25, -9), (0, -3.5, 11)]);
    }

    #[test]
    fn bulk_codec_matches_per_element_for_derive_macro_structs() {
        #[derive(Clone, Copy, Debug, PartialEq)]
        struct P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64,
        }
        impl_element_struct!(P {
            pos: [f64; 2],
            vel: [f64; 2],
            id: u64
        });
        assert_bulk_matches_per_element::<P>(&[
            P {
                pos: [0.0, 1.0],
                vel: [2.0, -2.0],
                id: 3,
            },
            P {
                pos: [9.5, -8.25],
                vel: [0.0, 0.125],
                id: u64::MAX,
            },
        ]);
    }

    #[test]
    fn bulk_codec_handles_empty_slices() {
        assert_bulk_matches_per_element::<f64>(&[]);
        assert_bulk_matches_per_element::<[f64; 3]>(&[]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn bulk_decode_rejects_ragged_payload() {
        let bytes = vec![0u8; 13];
        let mut out: Vec<u32> = Vec::new();
        u32::read_le_into(&bytes, &mut out);
    }

    #[test]
    fn empty_round_trip() {
        let xs: Vec<f64> = vec![];
        let enc = encode_slice(&xs);
        assert!(enc.is_empty());
        assert_eq!(decode_vec::<f64>(&enc), xs);
    }
}
