//! `cargo bench` entry point that regenerates every table of the paper's evaluation
//! section (harness = false: this is a report generator, not a statistical benchmark).
//!
//! Set `CHAOS_PAPER_SCALE=1` to run the larger, closer-to-the-paper workload sizes.

fn main() {
    let scale = chaos_bench::Scale::from_env();
    println!("Reproducing the evaluation tables of");
    println!("  \"Run-time and compile-time support for adaptive irregular problems\" (SC'94)");
    println!("Workload scale: {scale:?}");
    println!();
    for table in chaos_bench::tables::all_tables(&scale) {
        println!("{}", table.render());
        println!();
    }
}
