//! Criterion micro-benchmarks of the data partitioners (RCB, RIB, chain) — the ablation
//! behind Table 5's partitioner-cost trade-off.

use chaos::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpsim::{run, CostModel, MachineConfig};

const ELEMENTS_PER_RANK: usize = 2_000;

fn cloud(rank_id: usize, n: usize) -> (Vec<[f64; 3]>, Vec<f64>) {
    let coords: Vec<[f64; 3]> = (0..n)
        .map(|i| {
            let s = (rank_id * 7919 + i * 131 + 17) as f64;
            [
                (s * 0.618).fract() * 10.0,
                (s * 0.414).fract() * 10.0,
                (s * 0.732).fract() * 10.0,
            ]
        })
        .collect();
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    (coords, weights)
}

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioners");
    group.sample_size(10);
    for &nprocs in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("rcb", nprocs), &nprocs, |b, &p| {
            b.iter(|| {
                run(
                    MachineConfig::new(p).with_cost(CostModel::compute_only(0.0)),
                    |rank| {
                        let (coords, weights) = cloud(rank.rank(), ELEMENTS_PER_RANK);
                        rcb_partition(rank, PartitionInput::new(&coords, &weights), rank.nprocs())
                            .len()
                    },
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("rib", nprocs), &nprocs, |b, &p| {
            b.iter(|| {
                run(
                    MachineConfig::new(p).with_cost(CostModel::compute_only(0.0)),
                    |rank| {
                        let (coords, weights) = cloud(rank.rank(), ELEMENTS_PER_RANK);
                        rib_partition(rank, PartitionInput::new(&coords, &weights), rank.nprocs())
                            .len()
                    },
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("chain", nprocs), &nprocs, |b, &p| {
            b.iter(|| {
                run(
                    MachineConfig::new(p).with_cost(CostModel::compute_only(0.0)),
                    |rank| {
                        let (coords, weights) = cloud(rank.rank(), ELEMENTS_PER_RANK);
                        let xs: Vec<f64> = coords.iter().map(|c| c[0]).collect();
                        chain_partition(rank, &xs, &weights, rank.nprocs()).len()
                    },
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
