//! Criterion micro-benchmarks of the CHAOS runtime primitives: index hashing, schedule
//! generation, gather/scatter, scatter_append, and remapping.

use chaos::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpsim::{run, CostModel, MachineConfig};

const NPROCS: usize = 8;
const N: usize = 20_000;
const REFS_PER_RANK: usize = 4_000;

fn irregular_pattern(rank_id: usize) -> Vec<usize> {
    (0..REFS_PER_RANK)
        .map(|i| (i * 17 + rank_id * 101 + (i * i) % 977) % N)
        .collect()
}

fn bench_inspector(c: &mut Criterion) {
    let mut group = c.benchmark_group("inspector");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("hash_and_schedule", REFS_PER_RANK), |b| {
        b.iter(|| {
            run(
                MachineConfig::new(NPROCS).with_cost(CostModel::compute_only(0.0)),
                |rank| {
                    let dist = BlockDist::new(N, rank.nprocs());
                    let ttable = TranslationTable::from_regular(&dist);
                    let mut insp = Inspector::new(&ttable, rank.rank());
                    let pattern = irregular_pattern(rank.rank());
                    insp.hash_indices(rank, &pattern, Stamp::new(0));
                    insp.build_schedule(rank, StampQuery::single(Stamp::new(0)))
                        .total_fetch()
                },
            )
        });
    });
    group.bench_function(
        BenchmarkId::new("rehash_after_adaptation", REFS_PER_RANK),
        |b| {
            b.iter(|| {
                run(
                    MachineConfig::new(NPROCS).with_cost(CostModel::compute_only(0.0)),
                    |rank| {
                        let dist = BlockDist::new(N, rank.nprocs());
                        let ttable = TranslationTable::from_regular(&dist);
                        let mut insp = Inspector::new(&ttable, rank.rank());
                        let mut pattern = irregular_pattern(rank.rank());
                        insp.hash_indices(rank, &pattern, Stamp::new(0));
                        insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
                        // Adapt 1% of the references and regenerate (the cheap path).
                        for k in 0..REFS_PER_RANK / 100 {
                            pattern[k * 100] = (pattern[k * 100] + 7) % N;
                        }
                        insp.clear_stamp(Stamp::new(0));
                        insp.hash_indices(rank, &pattern, Stamp::new(0));
                        insp.build_schedule(rank, StampQuery::single(Stamp::new(0)))
                            .total_fetch()
                    },
                )
            });
        },
    );
    group.finish();
}

fn bench_executor(c: &mut Criterion) {
    let mut group = c.benchmark_group("executor");
    group.sample_size(10);
    group.bench_function("gather_scatter_add", |b| {
        b.iter(|| {
            run(
                MachineConfig::new(NPROCS).with_cost(CostModel::compute_only(0.0)),
                |rank| {
                    let dist = BlockDist::new(N, rank.nprocs());
                    let ttable = TranslationTable::from_regular(&dist);
                    let mut insp = Inspector::new(&ttable, rank.rank());
                    let pattern = irregular_pattern(rank.rank());
                    let refs = insp.hash_indices(rank, &pattern, Stamp::new(0));
                    let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
                    let mut x = DistArray::new(
                        vec![1.0f64; dist.local_size(rank.rank())],
                        sched.ghost_len(),
                    );
                    gather(rank, &sched, &mut x);
                    for &r in &refs {
                        x[r] += 1.0;
                    }
                    scatter_add(rank, &sched, &mut x);
                    x.owned().first().copied().unwrap_or(0.0)
                },
            )
        });
    });
    group.bench_function("scatter_append", |b| {
        b.iter(|| {
            run(
                MachineConfig::new(NPROCS).with_cost(CostModel::compute_only(0.0)),
                |rank| {
                    let items: Vec<f64> = (0..REFS_PER_RANK).map(|i| i as f64).collect();
                    let dests: Vec<usize> = (0..REFS_PER_RANK)
                        .map(|i| (i * 31 + rank.rank()) % NPROCS)
                        .collect();
                    let sched = LightweightSchedule::build(rank, &dests);
                    scatter_append(rank, &sched, &items).len()
                },
            )
        });
    });
    group.bench_function("remap_block_to_irregular", |b| {
        b.iter(|| {
            run(
                MachineConfig::new(NPROCS).with_cost(CostModel::compute_only(0.0)),
                |rank| {
                    let old = BlockDist::new(N, rank.nprocs());
                    let map_dist = BlockDist::new(N, rank.nprocs());
                    let local_map: Vec<usize> = map_dist
                        .local_globals(rank.rank())
                        .map(|g| (g * 7 + 3) % rank.nprocs())
                        .collect();
                    let mut table =
                        TranslationTable::replicated_from_map(rank, &local_map, &map_dist).unwrap();
                    let globals: Vec<usize> = old.local_globals(rank.rank()).collect();
                    let values: Vec<f64> = globals.iter().map(|&g| g as f64).collect();
                    let plan = build_remap(rank, &globals, &mut table);
                    remap_values(rank, &plan, &values, 0.0).len()
                },
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_inspector, bench_executor);
criterion_main!(benches);
