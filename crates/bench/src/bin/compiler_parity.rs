//! Compiled-vs-hand parity for the `fortrand` compiler loop (Tables 6–7 style): the
//! CHARMM non-bonded time loop and the DSMC append loop, each run through
//! `fortrand::compile_optimized` and compared against the hand-written CHAOS drivers.
//!
//! `--json [PATH]` writes `BENCH_compiler.json` (schema `chaos-bench/compiler/v1`,
//! documented in `BENCHMARKS.md`).  The artifact records no wall-clock, so repeated
//! runs are byte-identical — CI regenerates it twice and fails on any difference.
//! `--check` exits non-zero unless, at every processor count, the compiled programs
//! send exactly the same executor messages and bytes as the hand drivers, the CHARMM
//! inspector was hoisted (exactly one schedule build for the whole run), and the
//! hoist/fuse/overlap analyses all fired.

use chaos_bench::compiler::{
    charmm_parity, compiler_report, dsmc_parity, format_parity, parity_violations,
};
use chaos_bench::report::{parse_json_flag, write_json_file};
use chaos_bench::Scale;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    let json_path = parse_json_flag(&args, "BENCH_compiler.json").unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: compiler_parity [--json [PATH]] [--check]");
        std::process::exit(2);
    });

    let (scale, scale_name) = Scale::from_env_named();
    let nsteps = 5;
    let mut charmm = Vec::new();
    let mut dsmc = Vec::new();
    for &p in &scale.compiler_procs {
        charmm.push(charmm_parity(p, 1994, nsteps));
        dsmc.push(dsmc_parity(p, 64 * p, 8 * p, nsteps));
    }
    println!(
        "{}",
        format_parity(
            "CHARMM non-bonded time loop (compiled vs hand, executor traffic summed over ranks):",
            &charmm
        )
    );
    println!(
        "{}",
        format_parity(
            "DSMC append time loop (compiled vs hand, light-weight schedules):",
            &dsmc
        )
    );

    if let Some(path) = json_path {
        let doc = compiler_report(scale_name, &charmm, &dsmc);
        match write_json_file(&path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if check {
        let violations = parity_violations(&charmm, &dsmc);
        if violations.is_empty() {
            println!(
                "checks passed: compiled message and byte counts equal the hand drivers \
                 at every processor count; CHARMM inspector hoisted to a single build; \
                 hoist/fuse/overlap all applied"
            );
        } else {
            eprintln!("compiler parity regression:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
