//! Regenerate Table 2 of the paper (CHARMM preprocessing overheads).
fn main() {
    let scale = chaos_bench::Scale::from_env();
    println!(
        "{}",
        chaos_bench::tables::table2_charmm_preproc(&scale).render()
    );
}
