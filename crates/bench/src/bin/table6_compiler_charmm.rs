//! Regenerate Table 6 of the paper (hand-coded vs compiler-generated CHARMM loop).
fn main() {
    let scale = chaos_bench::Scale::from_env();
    println!(
        "{}",
        chaos_bench::tables::table6_compiler_charmm(&scale).render()
    );
}
