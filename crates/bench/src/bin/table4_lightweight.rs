//! Regenerate Table 4 of the paper (regular vs light-weight schedules, 2-D DSMC).
fn main() {
    let scale = chaos_bench::Scale::from_env();
    println!(
        "{}",
        chaos_bench::tables::table4_lightweight(&scale).render()
    );
}
