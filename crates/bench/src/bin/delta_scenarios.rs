//! Incremental schedule-maintenance scenarios: a drifting indirection array patched
//! forward vs rebuilt (byte-identity + cost), the drifting-DSMC upkeep comparison, and
//! the schedule-cache lifecycle counters.
//!
//! `--json [PATH]` additionally writes `BENCH_delta.json` (schema `chaos-bench/delta/v1`,
//! documented in `BENCHMARKS.md`).  The artifact records no wall-clock, so repeated runs
//! are byte-identical — CI regenerates it twice and fails on any difference.  `--check`
//! exits non-zero if the patched schedules are not byte-identical to rebuilds, the DSMC
//! physics or wire traffic differ between the upkeep settings, or steady-state patching
//! costs 50% or more of rebuilding.

use chaos_bench::delta::{
    cache_lifecycle, delta_report, delta_violations, dsmc_drift, format_drift, format_dsmc,
    schedule_drift, DriftParams, DsmcDeltaParams,
};
use chaos_bench::report::{parse_json_flag, write_json_file};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    let json_path = parse_json_flag(&args, "BENCH_delta.json").unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: delta_scenarios [--json [PATH]] [--check]");
        std::process::exit(2);
    });

    let drift = schedule_drift(&DriftParams::default_drift(8));
    println!("{}", format_drift(&drift));

    let dsmc = dsmc_drift(&DsmcDeltaParams::default_dsmc(16));
    println!("{}", format_dsmc(&dsmc));

    let cache = cache_lifecycle(8, 8);
    println!(
        "schedule-cache lifecycle (P = 8): {} hits, {} misses, {} patches, {} evictions",
        cache.hits, cache.misses, cache.patches, cache.evictions
    );

    if let Some(path) = json_path {
        let doc = delta_report(&drift, &dsmc, &cache);
        match write_json_file(&path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if check {
        let violations = delta_violations(&drift, &dsmc);
        if violations.is_empty() {
            println!(
                "checks passed: patched schedules byte-identical to rebuilds; DSMC \
                 fingerprints and wire traffic independent of the upkeep route; \
                 steady-state patch cost under 50% of rebuild in both scenarios"
            );
        } else {
            eprintln!("delta invariant regression:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
