//! Regenerate Table 1 of the paper (parallel CHARMM scaling).
fn main() {
    let scale = chaos_bench::Scale::from_env();
    println!(
        "{}",
        chaos_bench::tables::table1_charmm_scaling(&scale).render()
    );
}
