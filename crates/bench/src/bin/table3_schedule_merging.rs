//! Regenerate Table 3 of the paper (schedule merging vs multiple schedules).
fn main() {
    let scale = chaos_bench::Scale::from_env();
    println!(
        "{}",
        chaos_bench::tables::table3_schedule_merging(&scale).render()
    );
}
