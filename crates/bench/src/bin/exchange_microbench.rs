//! Steady-state microbenchmarks of the unified exchange engine.
//!
//! Runs the engine-shaped loops of `chaos_bench::microbench` (CHARMM gather/scatter,
//! DSMC append, CHARMM remap) on an 8-rank simulated machine, sweeps the gather/scatter
//! and append shapes over machine sizes (P = 2–64), payload element sizes (8–64 bytes)
//! and exchange backends (modeled vs shared-memory at P = 1–8), runs the collective
//! scaling sweep of `chaos_bench::collective` (P = 32–1024) and the parallel-inspector
//! preprocessing sweep of `chaos_bench::preproc`, and prints a summary.  With
//! `--json [PATH]`, also writes the machine-readable report (`BENCH_exchange.json` by
//! default; schema `chaos-bench/exchange/v5` in `BENCHMARKS.md`).  With `--check`,
//! exits non-zero if any loop violates a pinned invariant:
//!
//! * zero pack-buffer allocations after warm-up everywhere, zero decode-scratch
//!   allocations for every borrow-only loop (the steady-state gate) — applied to
//!   **every** microbenchmark section the report carries: the gated loop set is the
//!   section list itself, so a loop cannot enter the artifact ungated;
//! * backends agree on fingerprints, wire statistics and modeled time, and the
//!   shared-memory backend beats modeled by ≥ 2x wall-clock on the 64-byte POD loop
//!   (the backend gate);
//! * every collective within its log-depth message budget, and the O(1)-payload
//!   collectives' modeled time at P = 1024 within 2.5x of P = 32 (the scaling gate);
//! * parallel-inspector schedules byte-identical at every worker count, and — on hosts
//!   with ≥ 4 cores — the 4-worker clear sweep ≥ 1.5x faster than 1 worker (the
//!   preprocessing gate);
//! * patched schedules byte-identical to rebuilds, DSMC physics and wire traffic
//!   independent of the upkeep route, and steady-state patching under 50% of the
//!   rebuild cost (the delta gate — the same scenarios `delta_scenarios` records).

use chaos_bench::collective::{collective_scaling_violations, collective_sweep};
use chaos_bench::delta::{
    cache_lifecycle, delta_section, delta_violations, dsmc_drift, schedule_drift, DriftParams,
    DsmcDeltaParams,
};
use chaos_bench::microbench::{
    backend_equivalence_violations, exchange_report, microbench_sections, steady_state_violations,
    MicrobenchConfig,
};
use chaos_bench::preproc::{
    host_cores, preproc_scaling_violations, preproc_section, preproc_sweep,
};
use chaos_bench::report::{parse_json_flag, write_json_file};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    let json_path = parse_json_flag(&args, "BENCH_exchange.json").unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: exchange_microbench [--json [PATH]] [--check]");
        std::process::exit(2);
    });

    let cfg = MicrobenchConfig::default();
    println!(
        "exchange engine microbenchmarks ({} ranks, {} warmup + {} measured iterations, \
         host cores: {})",
        cfg.ranks,
        cfg.warmup_iters,
        cfg.measured_iters,
        host_cores()
    );
    let sections = microbench_sections(&cfg);
    for (name, rows) in &sections {
        println!("{name}:");
        for r in rows {
            println!("{}", r.summary_line());
        }
    }
    println!("collective sweep (log-depth scaling, P = 32-1024):");
    let collectives = collective_sweep();
    for r in &collectives {
        println!("{}", r.summary_line());
    }
    println!("preprocessing sweep (parallel inspector worker scaling):");
    let preproc = preproc_sweep();
    for r in &preproc {
        println!("{}", r.summary_line());
    }
    println!("delta maintenance (patch vs rebuild, drifting indirection + drifting DSMC):");
    let drift = schedule_drift(&DriftParams::default_drift(8));
    let dsmc = dsmc_drift(&DsmcDeltaParams::default_dsmc(16));
    let cache = cache_lifecycle(8, 8);
    println!(
        "  schedule_drift: steady patch {:.0} us vs rebuild {:.0} us, byte-identical: {}, \
         wall {:.1} ms",
        drift.steady_patch_us, drift.steady_rebuild_us, drift.byte_identical, drift.wall_ms
    );
    println!(
        "  dsmc_drift: upkeep patch {:.0} us vs rebuild {:.0} us, fingerprints match: {}, \
         wire traffic equal: {}, wall {:.1} ms",
        dsmc.patch_upkeep_us,
        dsmc.rebuild_upkeep_us,
        dsmc.fingerprints_match,
        dsmc.data_exchange_equal,
        dsmc.wall_ms
    );

    if let Some(path) = json_path {
        let doc = exchange_report(
            &sections,
            &collectives,
            preproc_section(&preproc),
            delta_section(&drift, &dsmc, &cache),
        );
        write_json_file(&path, &doc).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if check {
        // The gated loop set is derived from the report sections themselves — every
        // row that lands in the artifact is steady-state gated, with no separate
        // name list to drift out of sync.
        let mut violations = Vec::new();
        let mut gated_loops = 0;
        for (name, rows) in &sections {
            gated_loops += rows.len();
            violations.extend(steady_state_violations(rows));
            if *name == "backend_sweep" {
                violations.extend(backend_equivalence_violations(rows));
            }
        }
        violations.extend(collective_scaling_violations(&collectives));
        violations.extend(preproc_scaling_violations(&preproc));
        violations.extend(delta_violations(&drift, &dsmc));
        if violations.is_empty() {
            println!(
                "checks passed: 0 allocations after warm-up across {gated_loops} loops \
                 in {} sections; backends equivalent with the shared-memory fast path \
                 ahead; {} collective points within the log-depth message and time \
                 budgets; parallel inspector byte-identical across worker counts; delta \
                 maintenance byte-identical and under the 50% patch-cost bound",
                sections.len(),
                collectives.len()
            );
        } else {
            eprintln!("benchmark invariant regression:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
