//! Steady-state microbenchmarks of the unified exchange engine.
//!
//! Runs the three engine-shaped loops of `chaos_bench::microbench` (CHARMM
//! gather/scatter, DSMC append, CHARMM remap) on an 8-rank simulated machine and prints a
//! summary.  With `--json [PATH]`, also writes the machine-readable report
//! (`BENCH_exchange.json` by default; schema in `BENCHMARKS.md`).

use chaos_bench::microbench::{all_microbenches, exchange_report, MicrobenchConfig};
use chaos_bench::report::{parse_json_flag, write_json_file};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = parse_json_flag(&args, "BENCH_exchange.json").unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: exchange_microbench [--json [PATH]]");
        std::process::exit(2);
    });

    let cfg = MicrobenchConfig::default();
    println!(
        "exchange engine microbenchmarks ({} ranks, {} warmup + {} measured iterations)",
        cfg.ranks, cfg.warmup_iters, cfg.measured_iters
    );
    let results = all_microbenches(&cfg);
    for r in &results {
        println!("{}", r.summary_line());
    }

    if let Some(path) = json_path {
        let doc = exchange_report(&results);
        write_json_file(&path, &doc).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}
