//! Steady-state microbenchmarks of the unified exchange engine.
//!
//! Runs the engine-shaped loops of `chaos_bench::microbench` (CHARMM gather/scatter,
//! DSMC append, CHARMM remap) on an 8-rank simulated machine, sweeps the gather/scatter
//! and append shapes over machine sizes (P = 2–64) and payload element sizes (8–64
//! bytes), runs the collective scaling sweep of `chaos_bench::collective` (all-gather,
//! all-reduce, sparse negotiation and hierarchical monitoring at P = 32–1024), and
//! prints a summary.  With `--json [PATH]`, also writes the machine-readable report
//! (`BENCH_exchange.json` by default; schema `chaos-bench/exchange/v4` in
//! `BENCHMARKS.md`).  With `--check`, exits non-zero if any loop violates a pinned
//! invariant:
//!
//! * zero pack-buffer allocations after warm-up everywhere, zero decode-scratch
//!   allocations for every borrow-only loop (the steady-state gate);
//! * every collective within its log-depth message budget, and the O(1)-payload
//!   collectives' modeled time at P = 1024 within 2.5x of P = 32 (the scaling gate);
//! * patched schedules byte-identical to rebuilds, DSMC physics and wire traffic
//!   independent of the upkeep route, and steady-state patching under 50% of the
//!   rebuild cost (the delta gate — the same scenarios `delta_scenarios` records).

use chaos_bench::collective::{collective_scaling_violations, collective_sweep};
use chaos_bench::delta::{
    cache_lifecycle, delta_section, delta_violations, dsmc_drift, schedule_drift, DriftParams,
    DsmcDeltaParams,
};
use chaos_bench::microbench::{
    all_microbenches, element_size_sweep, exchange_report, rank_sweep, steady_state_violations,
    MicrobenchConfig,
};
use chaos_bench::report::{parse_json_flag, write_json_file};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    let json_path = parse_json_flag(&args, "BENCH_exchange.json").unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: exchange_microbench [--json [PATH]] [--check]");
        std::process::exit(2);
    });

    let cfg = MicrobenchConfig::default();
    println!(
        "exchange engine microbenchmarks ({} ranks, {} warmup + {} measured iterations)",
        cfg.ranks, cfg.warmup_iters, cfg.measured_iters
    );
    let benches = all_microbenches(&cfg);
    for r in &benches {
        println!("{}", r.summary_line());
    }
    println!("rank sweep (strong scaling, global problem size fixed):");
    let ranks = rank_sweep(&cfg);
    for r in &ranks {
        println!("{}", r.summary_line());
    }
    println!("element-size sweep (8 ranks):");
    let elems = element_size_sweep(&cfg);
    for r in &elems {
        println!("{}", r.summary_line());
    }
    println!("collective sweep (log-depth scaling, P = 32-1024):");
    let collectives = collective_sweep();
    for r in &collectives {
        println!("{}", r.summary_line());
    }
    println!("delta maintenance (patch vs rebuild, drifting indirection + drifting DSMC):");
    let drift = schedule_drift(&DriftParams::default_drift(8));
    let dsmc = dsmc_drift(&DsmcDeltaParams::default_dsmc(16));
    let cache = cache_lifecycle(8, 8);
    println!(
        "  schedule_drift: steady patch {:.0} us vs rebuild {:.0} us, byte-identical: {}",
        drift.steady_patch_us, drift.steady_rebuild_us, drift.byte_identical
    );
    println!(
        "  dsmc_drift: upkeep patch {:.0} us vs rebuild {:.0} us, fingerprints match: {}, \
         wire traffic equal: {}",
        dsmc.patch_upkeep_us,
        dsmc.rebuild_upkeep_us,
        dsmc.fingerprints_match,
        dsmc.data_exchange_equal
    );

    if let Some(path) = json_path {
        let doc = exchange_report(
            &benches,
            &ranks,
            &elems,
            &collectives,
            delta_section(&drift, &dsmc, &cache),
        );
        write_json_file(&path, &doc).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }

    if check {
        let all: Vec<_> = benches
            .iter()
            .chain(&ranks)
            .chain(&elems)
            .cloned()
            .collect();
        let mut violations = steady_state_violations(&all);
        violations.extend(collective_scaling_violations(&collectives));
        violations.extend(delta_violations(&drift, &dsmc));
        if violations.is_empty() {
            println!(
                "checks passed: 0 allocations after warm-up across {} loops; \
                 {} collective points within the log-depth message and time budgets; \
                 delta maintenance byte-identical and under the 50% patch-cost bound",
                all.len(),
                collectives.len()
            );
        } else {
            eprintln!("benchmark invariant regression:");
            for v in &violations {
                eprintln!("  {v}");
            }
            std::process::exit(1);
        }
    }
}
