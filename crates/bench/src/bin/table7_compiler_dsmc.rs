//! Regenerate Table 7 of the paper (compiler-generated vs manual DSMC template).
fn main() {
    let scale = chaos_bench::Scale::from_env();
    println!(
        "{}",
        chaos_bench::tables::table7_compiler_dsmc(&scale).render()
    );
}
