//! Regenerate Table 5 of the paper (remapping strategies, 3-D DSMC).
fn main() {
    let scale = chaos_bench::Scale::from_env();
    println!("{}", chaos_bench::tables::table5_remapping(&scale).render());
}
