//! Adaptive-remapping scenarios: drifting-density DSMC ramp + imbalance sweep over
//! machine sizes, comparing the `chaos::adapt` remap policies.
//!
//! `--json [PATH]` additionally writes `BENCH_adapt.json` (schema `chaos-bench/adapt/v1`,
//! documented in `BENCHMARKS.md`).  The artifact records no wall-clock, so repeated runs
//! are byte-identical — CI regenerates it twice and fails on any difference.

use chaos_bench::adapt::{adapt_report, drift_ramp, format_entries, imbalance_sweep, RampParams};
use chaos_bench::report::{parse_json_flag, write_json_file};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = match parse_json_flag(&args, "BENCH_adapt.json") {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("usage: adapt_scenarios [--json [PATH]]");
            std::process::exit(2);
        }
    };

    let ramp_params = RampParams::default_ramp(8);
    let ramp = drift_ramp(&ramp_params);
    println!(
        "{}",
        format_entries(
            &format!(
                "Drifting-density DSMC ramp ({}x{} cells, {} molecules, {} steps, {} procs)",
                ramp_params.grid.0,
                ramp_params.grid.1,
                ramp_params.nparticles,
                ramp_params.nsteps,
                ramp_params.ranks
            ),
            &ramp
        )
    );

    let sweep_ranks = [2usize, 4, 8, 16];
    let sweep = imbalance_sweep(&sweep_ranks);
    println!(
        "{}",
        format_entries("Imbalance sweep across machine sizes (P = 2..16)", &sweep)
    );

    if let Some(path) = json_path {
        let doc = adapt_report(&ramp, &sweep);
        match write_json_file(&path, &doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
