//! Regenerate every table of the paper's evaluation in one run.
//!
//! Prints the formatted tables; with `--json [PATH]` also writes the machine-readable
//! report (`BENCH_tables.json` by default; schema in `BENCHMARKS.md`), carrying every
//! table's title, headers, rows and wall-clock generation time.

use std::time::Instant;

use chaos_bench::report::{parse_json_flag, write_json_file, Json};
use chaos_bench::tables::table_generators;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json_path = parse_json_flag(&args, "BENCH_tables.json").unwrap_or_else(|msg| {
        eprintln!("{msg}");
        eprintln!("usage: all_tables [--json [PATH]]");
        std::process::exit(2);
    });

    let (scale, scale_name) = chaos_bench::Scale::from_env_named();

    let mut entries = Vec::new();
    for (key, generate) in table_generators() {
        let start = Instant::now();
        let table = generate(&scale);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        println!("{}", table.render());
        println!();
        entries.push(Json::obj(vec![
            ("id", Json::str(key)),
            ("title", Json::str(table.title.clone())),
            ("wall_ms", Json::Num((wall_ms * 100.0).round() / 100.0)),
            (
                "headers",
                Json::Arr(table.headers.iter().map(Json::str).collect()),
            ),
            (
                "rows",
                Json::Arr(
                    table
                        .rows
                        .iter()
                        .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                        .collect(),
                ),
            ),
        ]));
    }

    if let Some(path) = json_path {
        let doc = Json::obj(vec![
            ("schema", Json::str("chaos-bench/tables/v1")),
            (
                "generated_by",
                Json::str("cargo run --release -p chaos-bench --bin all_tables -- --json"),
            ),
            ("scale", Json::str(scale_name)),
            ("tables", Json::Arr(entries)),
        ]);
        write_json_file(&path, &doc).unwrap_or_else(|e| {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
}
