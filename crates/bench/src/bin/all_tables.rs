//! Regenerate every table of the paper's evaluation in one run.
fn main() {
    let scale = chaos_bench::Scale::from_env();
    for table in chaos_bench::tables::all_tables(&scale) {
        println!("{}", table.render());
        println!();
    }
}
