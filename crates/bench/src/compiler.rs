//! Compiler-loop parity benchmarks (`BENCH_compiler.json`): the Tables 6–7 comparison
//! re-run on top of the `fortrand::opt` compiler loop.
//!
//! Two scenarios, each compiled-vs-hand:
//!
//! * **CHARMM-style** — the three-coordinate non-bonded force sweep inside a `DO` time
//!   loop.  The optimizer fuses the X/Y/Z sweeps into one schedule group and hoists the
//!   inspector out of the time loop; the hand version is the `charmm` crate's
//!   production driver (`run_parallel`) on a zero-bond system with a BLOCK
//!   distribution and one merged schedule.  Both then execute exactly one fused gather
//!   and one fused scatter-add per step, so their executor message counts must be
//!   **equal** — that equality is the `--check` gate (and the acceptance pin of the
//!   compiler loop: compiler-generated code pays the same communication price as the
//!   hand-written node program).
//! * **DSMC-style** — the `REDUCE(APPEND)` particle-move template inside a `DO` loop
//!   with a drifting cell assignment.  The compiled program rebuilds a light-weight
//!   schedule per step from the replicated `icell` array; the hand version builds the
//!   same schedule from the same destinations.  Message counts must again be equal.
//!
//! Modeled executor times are reported for both versions (the Tables 6–7 "compiler
//! within a small factor of hand" story) but not gated — the gate is message parity,
//! which is exact.

use chaos::prelude::*;
use charmm::parallel::{ParallelCharmm, ParallelConfig, PartitionerKind, ScheduleMode};
use charmm::{MolecularSystem, SystemConfig};
use fortrand::Executor;
use mpsim::{run, ExchangeStats, MachineConfig};

use crate::report::Json;

/// The CHARMM-style Fortran-D source: three coordinate sweeps over one CSR neighbour
/// list, plus a list-age integer update, all inside the molecular-dynamics time loop.
pub fn charmm_loop_source(natoms: usize, list_len: usize, nsteps: usize) -> String {
    let dims = [("x", "dx"), ("y", "dy"), ("z", "dz")];
    let mut body = String::new();
    for (p, f) in dims {
        body.push_str(&format!(
            "FORALL i = 1, {n}\n\
             FORALL j = inblo(i), inblo(i+1) - 1\n\
             REDUCE(SUM, {f}(jnb(j)), {p}(jnb(j)) - {p}(i))\n\
             REDUCE(SUM, {f}(i), {p}(i) - {p}(jnb(j)))\n\
             END FORALL\n\
             END FORALL\n",
            n = natoms
        ));
    }
    format!(
        "REAL x({n}), y({n}), z({n}), dx({n}), dy({n}), dz({n})\n\
         INTEGER inblo({m}), jnb({k}), iage({n})\n\
         C$ DECOMPOSITION reg({n})\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x, y, z, dx, dy, dz WITH reg\n\
         DO istep = 1, {s}\n\
         {body}\
         FORALL i = 1, {n}\n\
         iage(i) = iage(i) + 1\n\
         END FORALL\n\
         END DO\n",
        n = natoms,
        m = natoms + 1,
        k = list_len,
        s = nsteps
    )
}

/// The DSMC-style Fortran-D source: a `REDUCE(APPEND)` move followed by the cell
/// assignment drifting one cell forward (cyclically), per time step.
pub fn dsmc_loop_source(nparticles: usize, ncells: usize, nsteps: usize) -> String {
    format!(
        "REAL vel({np}), newvel({nc})\n\
         INTEGER icell({np})\n\
         C$ DECOMPOSITION parts({np})\n\
         C$ DECOMPOSITION cells({nc})\n\
         C$ DISTRIBUTE parts(BLOCK)\n\
         C$ DISTRIBUTE cells(BLOCK)\n\
         C$ ALIGN vel WITH parts\n\
         C$ ALIGN newvel WITH cells\n\
         DO istep = 1, {s}\n\
         FORALL i = 1, {np}\n\
         REDUCE(APPEND, newvel(icell(i)), vel(i))\n\
         END FORALL\n\
         FORALL i = 1, {np}\n\
         icell(i) = icell(i) - (icell(i) / {nc}) * {nc} + 1\n\
         END FORALL\n\
         END DO\n",
        np = nparticles,
        nc = ncells,
        s = nsteps
    )
}

/// One compiled-vs-hand comparison at a fixed processor count.  Message and byte
/// counts are summed over all ranks; times are the slowest rank's modeled executor
/// time in microseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParityEntry {
    /// Processor count of the run.
    pub procs: usize,
    /// Executor messages the compiled program sent, summed over ranks and steps.
    pub compiled_msgs: u64,
    /// Executor messages the hand-written driver sent, summed the same way.
    pub hand_msgs: u64,
    /// Executor bytes the compiled program sent.
    pub compiled_bytes: u64,
    /// Executor bytes the hand-written driver sent.
    pub hand_bytes: u64,
    /// Modeled executor time of the compiled program (slowest rank, µs).
    pub compiled_time_us: f64,
    /// Modeled executor time of the hand driver (slowest rank, µs).
    pub hand_time_us: f64,
    /// Schedule builds the compiled program performed (CHARMM: must be 1 — the
    /// inspector was hoisted; DSMC: 0 — light-weight schedules have no inspector).
    pub compiled_schedule_builds: u64,
    /// Optimizer diagnostics that fired on the compiled source, as
    /// `(applied_hoist, applied_fuse, applied_overlap)` counts.
    pub applied_opts: (u64, u64, u64),
}

/// The zero-bond CHARMM-style workload: a synthetic system with its bonded topology
/// removed (the compiled template covers the non-bonded sweep only) and the global
/// neighbour list in 1-based CSR form.
pub fn charmm_workload(seed: u64) -> (MolecularSystem, Vec<i64>, Vec<i64>) {
    let mut system = MolecularSystem::build(&SystemConfig::small(seed));
    system.bonds.clear();
    let list =
        charmm::nonbonded::build_neighbor_list(&system.positions, system.box_size, system.cutoff);
    let inblo: Vec<i64> = list.offsets.iter().map(|&o| o as i64 + 1).collect();
    let jnb: Vec<i64> = list.partners.iter().map(|&p| p as i64 + 1).collect();
    (system, inblo, jnb)
}

fn count_applied(report: &fortrand::OptReport) -> (u64, u64, u64) {
    let count = |rule: &str| report.applied().filter(|d| d.rule.name() == rule).count() as u64;
    (count("hoist"), count("fuse"), count("overlap"))
}

/// Run the CHARMM-style comparison at `procs` ranks.
pub fn charmm_parity(procs: usize, seed: u64, nsteps: usize) -> ParityEntry {
    // Hand: the production driver, pinned to the configuration the compiled template
    // models — BLOCK distribution (identity partition), one merged schedule, no list
    // updates or repartitions inside the run.
    let hand = run(MachineConfig::new(procs), move |rank| {
        let (system, _, _) = charmm_workload(seed);
        let config = ParallelConfig {
            nsteps,
            list_update_interval: nsteps + 2,
            partitioner: PartitionerKind::Block,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let stats = ParallelCharmm::run(rank, &system, &config);
        (
            stats.executor_exchange,
            stats.phases.executor.total_us(),
            stats.schedule_builds as u64,
        )
    });

    let compiled = run(MachineConfig::new(procs), move |rank| {
        let (system, inblo, jnb) = charmm_workload(seed);
        let natoms = system.natoms();
        let source = charmm_loop_source(natoms, jnb.len(), nsteps);
        let (optimized, report) =
            fortrand::compile_optimized(&source).expect("CHARMM template compiles");
        let mut exec = Executor::new(rank, &optimized);
        exec.set_integer_array("INBLO", &inblo);
        exec.set_integer_array("JNB", &jnb);
        let coord = |k: usize| -> Vec<f64> { system.positions.iter().map(|p| p[k]).collect() };
        exec.set_real_array("X", &coord(0));
        exec.set_real_array("Y", &coord(1));
        exec.set_real_array("Z", &coord(2));
        for f in ["DX", "DY", "DZ"] {
            exec.set_real_array(f, &vec![0.0; natoms]);
        }
        exec.run_all(rank);
        let (rebuilds, _patches, _reuses) = exec.group_stats(0);
        (
            exec.exchange_stats(),
            exec.phases().executor.total_us(),
            rebuilds,
            count_applied(&report),
        )
    });

    let sum_stats = |stats: &[ExchangeStats]| -> (u64, u64) {
        (
            stats.iter().map(|s| s.msgs_sent).sum(),
            stats.iter().map(|s| s.bytes_sent).sum(),
        )
    };
    let hand_exch: Vec<ExchangeStats> = hand.results.iter().map(|r| r.0).collect();
    let comp_exch: Vec<ExchangeStats> = compiled.results.iter().map(|r| r.0).collect();
    let (hand_msgs, hand_bytes) = sum_stats(&hand_exch);
    let (compiled_msgs, compiled_bytes) = sum_stats(&comp_exch);
    ParityEntry {
        procs,
        compiled_msgs,
        hand_msgs,
        compiled_bytes,
        hand_bytes,
        compiled_time_us: compiled.results.iter().map(|r| r.1).fold(0.0, f64::max),
        hand_time_us: hand.results.iter().map(|r| r.1).fold(0.0, f64::max),
        compiled_schedule_builds: compiled.results.iter().map(|r| r.2).max().unwrap_or(0),
        applied_opts: compiled.results[0].3,
    }
}

/// Deterministic 1-based initial cell assignment for the DSMC comparison.
pub fn dsmc_initial_cells(nparticles: usize, ncells: usize) -> Vec<i64> {
    (0..nparticles)
        .map(|i| (((i * 7 + i / 3) % ncells) + 1) as i64)
        .collect()
}

/// Message/byte accounting of one light-weight exchange, matching the interpreter's:
/// one message per non-empty cross-rank send list, `(u64, f64)` items on the wire.
fn lightweight_stats(sched: &LightweightSchedule, my_rank: usize) -> ExchangeStats {
    let item_bytes = std::mem::size_of::<(u64, f64)>() as u64;
    let mut stats = ExchangeStats::default();
    for (p, list) in sched.send_item_lists.iter().enumerate() {
        if p != my_rank && !list.is_empty() {
            stats.msgs_sent += 1;
            stats.bytes_sent += list.len() as u64 * item_bytes;
        }
    }
    for (p, &cnt) in sched.recv_counts.iter().enumerate() {
        if p != my_rank && cnt > 0 {
            stats.msgs_received += 1;
            stats.bytes_received += cnt as u64 * item_bytes;
        }
    }
    stats
}

/// Run the DSMC-style comparison at `procs` ranks.
pub fn dsmc_parity(procs: usize, np: usize, nc: usize, nsteps: usize) -> ParityEntry {
    // Hand: per step, build a light-weight schedule from the current cell assignment,
    // scatter-append the particle values, then drift the (replicated) assignment the
    // same way the compiled integer-update loop does.
    let hand = run(MachineConfig::new(procs), move |rank| {
        let me = rank.rank();
        let part_dist = BlockDist::new(np, rank.nprocs());
        let cell_dist = BlockDist::new(nc, rank.nprocs());
        let my_parts: Vec<usize> = part_dist.local_globals(me).collect();
        let vel: Vec<f64> = my_parts.iter().map(|&i| i as f64 * 0.5).collect();
        let mut icell = dsmc_initial_cells(np, nc);
        let t0 = rank.modeled();
        let mut exchange = ExchangeStats::default();
        for _step in 0..nsteps {
            let dests: Vec<usize> = my_parts
                .iter()
                .map(|&i| cell_dist.owner((icell[i] - 1) as usize))
                .collect();
            let payload: Vec<(u64, f64)> = my_parts
                .iter()
                .zip(&vel)
                .map(|(&i, &v)| ((icell[i] - 1) as u64, v))
                .collect();
            let sched = LightweightSchedule::build(rank, &dests);
            let arrivals = scatter_append(rank, &sched, &payload);
            exchange = exchange.merged(&lightweight_stats(&sched, me));
            rank.charge_compute(arrivals.len() as f64 * 0.3);
            let ncells = nc as i64;
            for v in icell.iter_mut() {
                *v = *v - (*v / ncells) * ncells + 1;
            }
        }
        (exchange, rank.modeled().since(&t0).total_us())
    });

    let compiled = run(MachineConfig::new(procs), move |rank| {
        let source = dsmc_loop_source(np, nc, nsteps);
        let (optimized, report) =
            fortrand::compile_optimized(&source).expect("DSMC template compiles");
        let mut exec = Executor::new(rank, &optimized);
        let vel: Vec<f64> = (0..np).map(|i| i as f64 * 0.5).collect();
        exec.set_real_array("VEL", &vel);
        exec.set_integer_array("ICELL", &dsmc_initial_cells(np, nc));
        exec.run_all(rank);
        (
            exec.exchange_stats(),
            exec.phases().executor.total_us(),
            count_applied(&report),
        )
    });

    ParityEntry {
        procs,
        compiled_msgs: compiled.results.iter().map(|r| r.0.msgs_sent).sum(),
        hand_msgs: hand.results.iter().map(|r| r.0.msgs_sent).sum(),
        compiled_bytes: compiled.results.iter().map(|r| r.0.bytes_sent).sum(),
        hand_bytes: hand.results.iter().map(|r| r.0.bytes_sent).sum(),
        compiled_time_us: compiled.results.iter().map(|r| r.1).fold(0.0, f64::max),
        hand_time_us: hand.results.iter().map(|r| r.1).fold(0.0, f64::max),
        compiled_schedule_builds: 0,
        applied_opts: compiled.results[0].2,
    }
}

/// Render one scenario's entries as a Tables 6–7 style text block.
pub fn format_parity(title: &str, entries: &[ParityEntry]) -> String {
    let mut out = format!("{title}\n");
    for e in entries {
        out.push_str(&format!(
            "  {:>3} procs: compiled {} msgs / {} bytes ({:.1} ms), hand {} msgs / {} bytes \
             ({:.1} ms), opts applied hoist={} fuse={} overlap={}\n",
            e.procs,
            e.compiled_msgs,
            e.compiled_bytes,
            e.compiled_time_us / 1000.0,
            e.hand_msgs,
            e.hand_bytes,
            e.hand_time_us / 1000.0,
            e.applied_opts.0,
            e.applied_opts.1,
            e.applied_opts.2,
        ));
    }
    out
}

/// The parity invariants the `--check` gate enforces.  Empty means all hold.
pub fn parity_violations(charmm: &[ParityEntry], dsmc: &[ParityEntry]) -> Vec<String> {
    let mut v = Vec::new();
    for e in charmm {
        if e.compiled_msgs != e.hand_msgs {
            v.push(format!(
                "CHARMM P={}: compiled sent {} messages, hand sent {}",
                e.procs, e.compiled_msgs, e.hand_msgs
            ));
        }
        if e.compiled_bytes != e.hand_bytes {
            v.push(format!(
                "CHARMM P={}: compiled sent {} bytes, hand sent {}",
                e.procs, e.compiled_bytes, e.hand_bytes
            ));
        }
        if e.compiled_schedule_builds != 1 {
            v.push(format!(
                "CHARMM P={}: expected exactly 1 hoisted schedule build, saw {}",
                e.procs, e.compiled_schedule_builds
            ));
        }
        let (hoists, fuses, overlaps) = e.applied_opts;
        if hoists == 0 || fuses == 0 || overlaps == 0 {
            v.push(format!(
                "CHARMM P={}: optimizer failed to fire (hoist={hoists}, fuse={fuses}, \
                 overlap={overlaps})",
                e.procs
            ));
        }
    }
    for e in dsmc {
        if e.compiled_msgs != e.hand_msgs {
            v.push(format!(
                "DSMC P={}: compiled sent {} messages, hand sent {}",
                e.procs, e.compiled_msgs, e.hand_msgs
            ));
        }
        if e.compiled_bytes != e.hand_bytes {
            v.push(format!(
                "DSMC P={}: compiled sent {} bytes, hand sent {}",
                e.procs, e.compiled_bytes, e.hand_bytes
            ));
        }
    }
    v
}

fn entry_json(e: &ParityEntry) -> Json {
    Json::obj(vec![
        ("procs", Json::uint(e.procs as u64)),
        ("compiled_msgs", Json::uint(e.compiled_msgs)),
        ("hand_msgs", Json::uint(e.hand_msgs)),
        ("compiled_bytes", Json::uint(e.compiled_bytes)),
        ("hand_bytes", Json::uint(e.hand_bytes)),
        // Rounded to whole microseconds: the raw modeled floats carry ~1e-11 of
        // accumulation jitter across runs, and the artifact must be byte-identical.
        (
            "compiled_time_us",
            Json::uint(e.compiled_time_us.round() as u64),
        ),
        ("hand_time_us", Json::uint(e.hand_time_us.round() as u64)),
        (
            "compiled_schedule_builds",
            Json::uint(e.compiled_schedule_builds),
        ),
        (
            "applied_opts",
            Json::obj(vec![
                ("hoist", Json::uint(e.applied_opts.0)),
                ("fuse", Json::uint(e.applied_opts.1)),
                ("overlap", Json::uint(e.applied_opts.2)),
            ]),
        ),
    ])
}

/// The `BENCH_compiler.json` document (schema `chaos-bench/compiler/v1`).  Contains no
/// wall-clock or host state, so repeated runs are byte-identical.
pub fn compiler_report(scale_name: &str, charmm: &[ParityEntry], dsmc: &[ParityEntry]) -> Json {
    Json::obj(vec![
        ("schema", Json::str("chaos-bench/compiler/v1")),
        ("scale", Json::str(scale_name)),
        ("charmm", Json::Arr(charmm.iter().map(entry_json).collect())),
        ("dsmc", Json::Arr(dsmc.iter().map(entry_json).collect())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charmm_parity_is_exact_and_hoisted() {
        let e = charmm_parity(4, 3, 3);
        assert_eq!(e.compiled_msgs, e.hand_msgs, "{e:?}");
        assert_eq!(e.compiled_bytes, e.hand_bytes, "{e:?}");
        assert!(e.compiled_msgs > 0, "4 ranks must exchange something");
        assert_eq!(e.compiled_schedule_builds, 1, "inspector must be hoisted");
        let (h, f, o) = e.applied_opts;
        assert!(h >= 1 && f >= 1 && o >= 1, "{e:?}");
    }

    #[test]
    fn dsmc_parity_is_exact() {
        let e = dsmc_parity(4, 160, 24, 3);
        assert_eq!(e.compiled_msgs, e.hand_msgs, "{e:?}");
        assert_eq!(e.compiled_bytes, e.hand_bytes, "{e:?}");
        assert!(e.compiled_msgs > 0);
    }

    #[test]
    fn report_is_deterministic() {
        let a = charmm_parity(2, 5, 2);
        let b = charmm_parity(2, 5, 2);
        assert_eq!(a, b);
        let doc = compiler_report("quick", &[a], &[]);
        assert!(doc.render().contains("chaos-bench/compiler/v1"));
    }
}
