//! One generator per table of the paper's evaluation section.

use chaos::prelude::*;
use charmm::parallel::{ParallelConfig, PartitionerKind, ScheduleMode};
use charmm::system::{MolecularSystem, SystemConfig};
use charmm::ParallelCharmm;
use dsmc::{
    seed_particles, CellGrid, DsmcConfig, FlowConfig, MoveMode, RemapStrategy, SequentialDsmc,
};
use fortrand::Executor;
use mpsim::{run, MachineConfig, Rank};

use crate::workloads::{charmm_medium, charmm_paper, format_table, secs};

/// Workload scale used by the table generators.
#[derive(Debug, Clone)]
pub struct Scale {
    /// CHARMM-like system (Tables 1–3, 6).
    pub charmm: SystemConfig,
    /// CHARMM time steps per run.
    pub charmm_steps: usize,
    /// CHARMM non-bonded list update interval.
    pub charmm_update: usize,
    /// Processor counts for the CHARMM tables.
    pub charmm_procs: Vec<usize>,
    /// 2-D DSMC grids for Table 4 (the paper uses 48×48 and 96×96).
    pub dsmc2d_grids: Vec<(usize, usize)>,
    /// Average molecules per cell for the 2-D DSMC runs.
    pub dsmc2d_particles_per_cell: usize,
    /// 2-D DSMC steps.
    pub dsmc2d_steps: usize,
    /// Processor counts for the DSMC tables.
    pub dsmc_procs: Vec<usize>,
    /// 3-D DSMC grid for Table 5.
    pub dsmc3d_grid: (usize, usize, usize),
    /// Total molecules for the 3-D DSMC run.
    pub dsmc3d_particles: usize,
    /// 3-D DSMC steps (the paper runs 1 000, remapping every 40).
    pub dsmc3d_steps: usize,
    /// Remap interval for Table 5.
    pub dsmc3d_remap_interval: usize,
    /// Processor counts for the compiler comparisons (Tables 6, 7).
    pub compiler_procs: Vec<usize>,
    /// Table 7 template: number of particles and cells.
    pub template_particles: usize,
    /// Table 7 template: number of cells.
    pub template_cells: usize,
    /// Table 7 template: steps.
    pub template_steps: usize,
}

impl Scale {
    /// The scale used by `cargo bench` and the table binaries by default: small enough to
    /// run the whole suite in minutes, large enough that every qualitative trend of the
    /// paper is visible.
    pub fn quick() -> Self {
        Scale {
            charmm: charmm_medium(),
            charmm_steps: 6,
            charmm_update: 3,
            charmm_procs: vec![1, 4, 8, 16, 32],
            dsmc2d_grids: vec![(24, 24), (48, 48)],
            dsmc2d_particles_per_cell: 6,
            dsmc2d_steps: 12,
            dsmc_procs: vec![4, 8, 16, 32],
            dsmc3d_grid: (16, 8, 8),
            dsmc3d_particles: 16_000,
            dsmc3d_steps: 60,
            dsmc3d_remap_interval: 20,
            compiler_procs: vec![4, 8, 16],
            template_particles: 5_000,
            template_cells: 1_024,
            template_steps: 25,
        }
    }

    /// A larger scale closer to the paper's parameters (14 026 atoms, 48×48 / 96×96 cells,
    /// 128 processors).  Expect a run time of tens of minutes.
    pub fn paper_like() -> Self {
        Scale {
            charmm: charmm_paper(),
            charmm_steps: 8,
            charmm_update: 4,
            charmm_procs: vec![1, 16, 32, 64, 128],
            dsmc2d_grids: vec![(48, 48), (96, 96)],
            dsmc2d_particles_per_cell: 8,
            dsmc2d_steps: 20,
            dsmc_procs: vec![16, 32, 64, 128],
            dsmc3d_grid: (32, 16, 16),
            dsmc3d_particles: 120_000,
            dsmc3d_steps: 120,
            dsmc3d_remap_interval: 40,
            compiler_procs: vec![8, 32, 64],
            template_particles: 5_000,
            template_cells: 1_024,
            template_steps: 50,
        }
    }

    /// Choose the scale from the `CHAOS_PAPER_SCALE` environment variable (any non-empty
    /// value selects [`Scale::paper_like`]).
    pub fn from_env() -> Self {
        Self::from_env_named().0
    }

    /// Like [`Scale::from_env`], but also returns the scale's name (`"quick"` /
    /// `"paper_like"`) — the value `BENCH_tables.json` records, kept next to the
    /// selection logic so the two can never disagree.
    pub fn from_env_named() -> (Self, &'static str) {
        match std::env::var("CHAOS_PAPER_SCALE") {
            Ok(v) if !v.is_empty() && v != "0" => (Scale::paper_like(), "paper_like"),
            _ => (Scale::quick(), "quick"),
        }
    }
}

/// A generated table: its title and formatted text (also carrying the raw rows so tests
/// and EXPERIMENTS.md generation can inspect values).
#[derive(Debug, Clone)]
pub struct TableOutput {
    /// The table title (mirrors the paper's caption).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells as strings.
    pub rows: Vec<Vec<String>>,
}

impl TableOutput {
    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        format_table(&self.title, &self.headers, &self.rows)
    }
}

// ===================================================================== Table 1 =========

/// Table 1: performance of parallel CHARMM — execution, computation and communication
/// time plus the load-balance index over a processor sweep.
pub fn table1_charmm_scaling(scale: &Scale) -> TableOutput {
    let mut headers = vec!["Metric".to_string()];
    let mut exec = vec!["Execution Time (s)".to_string()];
    let mut comp = vec!["Computation Time (s)".to_string()];
    let mut comm = vec!["Communication Time (s)".to_string()];
    let mut lb = vec!["Load Balance Index".to_string()];
    for &p in &scale.charmm_procs {
        headers.push(format!("{p} procs"));
        let sys_cfg = scale.charmm.clone();
        let config = ParallelConfig {
            nsteps: scale.charmm_steps,
            list_update_interval: scale.charmm_update,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let out = run(MachineConfig::new(p), move |rank| {
            let system = MolecularSystem::build(&sys_cfg);
            ParallelCharmm::run(rank, &system, &config)
        });
        exec.push(secs(out.max_total_us()));
        comp.push(secs(out.avg_compute_us()));
        comm.push(secs(out.avg_comm_us()));
        let exec_compute: Vec<f64> = out
            .results
            .iter()
            .map(|s| s.phases.executor.compute_us)
            .collect();
        lb.push(format!("{:.2}", chaos::load_balance_index(&exec_compute)));
    }
    TableOutput {
        title: format!(
            "Table 1: Performance of Parallel CHARMM ({} atoms, {} steps, modeled seconds)",
            scale.charmm.total_atoms(),
            scale.charmm_steps
        ),
        headers,
        rows: vec![exec, comp, comm, lb],
    }
}

// ===================================================================== Table 2 =========

/// Table 2: preprocessing overheads of CHARMM — partitioning, list update, remapping,
/// schedule generation and regeneration.
pub fn table2_charmm_preproc(scale: &Scale) -> TableOutput {
    let mut headers = vec!["Phase".to_string()];
    let mut partition = vec!["Data Partition (s)".to_string()];
    let mut list_update = vec!["Non-bonded List Update (s)".to_string()];
    let mut remap = vec!["Remapping and Preprocessing (s)".to_string()];
    let mut sched_gen = vec!["Schedule Generation (s)".to_string()];
    let mut sched_regen = vec!["Schedule Regeneration (total, s)".to_string()];
    for &p in scale.charmm_procs.iter().filter(|&&p| p > 1) {
        headers.push(format!("{p} procs"));
        let sys_cfg = scale.charmm.clone();
        let config = ParallelConfig {
            nsteps: scale.charmm_steps,
            list_update_interval: scale.charmm_update,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let out = run(MachineConfig::new(p), move |rank| {
            let system = MolecularSystem::build(&sys_cfg);
            ParallelCharmm::run(rank, &system, &config).phases
        });
        let max = |f: &dyn Fn(&charmm::CharmmPhaseTimes) -> f64| -> f64 {
            out.results.iter().map(f).fold(0.0, f64::max)
        };
        partition.push(secs(max(&|ph| ph.data_partition.total_us())));
        list_update.push(secs(max(&|ph| ph.list_update.total_us())));
        remap.push(secs(max(&|ph| ph.remap.total_us())));
        sched_gen.push(secs(max(&|ph| ph.schedule_generation.total_us())));
        sched_regen.push(secs(max(&|ph| ph.schedule_regeneration.total_us())));
    }
    TableOutput {
        title: format!(
            "Table 2: Preprocessing Overheads of CHARMM ({} atoms, list updated every {} steps)",
            scale.charmm.total_atoms(),
            scale.charmm_update
        ),
        headers,
        rows: vec![partition, list_update, remap, sched_gen, sched_regen],
    }
}

// ===================================================================== Table 3 =========

/// Table 3: communication and execution time with one merged schedule versus one schedule
/// per loop.
pub fn table3_schedule_merging(scale: &Scale) -> TableOutput {
    let mut headers = vec!["Procs".to_string()];
    headers.extend(
        [
            "Merged: Comm (s)",
            "Merged: Exec (s)",
            "Multiple: Comm (s)",
            "Multiple: Exec (s)",
        ]
        .map(String::from),
    );
    let mut rows = Vec::new();
    for &p in scale.charmm_procs.iter().filter(|&&p| p > 1) {
        let mut row = vec![p.to_string()];
        for mode in [ScheduleMode::Merged, ScheduleMode::Multiple] {
            let sys_cfg = scale.charmm.clone();
            let config = ParallelConfig {
                nsteps: scale.charmm_steps,
                list_update_interval: scale.charmm_update,
                partitioner: PartitionerKind::Rcb,
                schedule_mode: mode,
                repartition_interval: None,
                adapt_policy: None,
                monitor_group: None,
            };
            let out = run(MachineConfig::new(p), move |rank| {
                let system = MolecularSystem::build(&sys_cfg);
                ParallelCharmm::run(rank, &system, &config)
            });
            row.push(secs(out.avg_comm_us()));
            row.push(secs(out.max_total_us()));
        }
        rows.push(row);
    }
    TableOutput {
        title: "Table 3: Schedule Merging vs. Multiple Schedules (CHARMM)".to_string(),
        headers,
        rows,
    }
}

// ===================================================================== Table 4 =========

/// Table 4: 2-D DSMC execution time with regular versus light-weight schedules.
pub fn table4_lightweight(scale: &Scale) -> TableOutput {
    let mut headers = vec!["Schedule / Grid".to_string()];
    for &p in &scale.dsmc_procs {
        headers.push(format!("{p} procs"));
    }
    let mut rows = Vec::new();
    for &(nx, ny) in &scale.dsmc2d_grids {
        for mode in [MoveMode::Regular, MoveMode::Lightweight] {
            let label = match mode {
                MoveMode::Regular => format!("Regular schedules, {nx}x{ny} cells (s)"),
                MoveMode::Lightweight => format!("Light-weight schedules, {nx}x{ny} cells (s)"),
                MoveMode::Patched { .. } => unreachable!("table 4 compares the paper's modes"),
            };
            let mut row = vec![label];
            for &p in &scale.dsmc_procs {
                let grid = CellGrid::new_2d(nx, ny);
                let nparticles = nx * ny * scale.dsmc2d_particles_per_cell;
                // "The computational load was deliberately evenly distributed": no drift.
                let flow = FlowConfig::uniform(7);
                let config = DsmcConfig {
                    nsteps: scale.dsmc2d_steps,
                    dt: 0.4,
                    move_mode: mode,
                    remap: RemapStrategy::Static,
                    remap_interval: 1_000_000,
                    policy: None,
                    monitor_group: None,
                    seed: 7,
                };
                let out = run(MachineConfig::new(p), move |rank| {
                    let particles = seed_particles(&grid, nparticles, &flow);
                    dsmc::parallel::run_parallel(rank, &grid, &particles, &config)
                });
                row.push(secs(out.max_total_us()));
            }
            rows.push(row);
        }
    }
    TableOutput {
        title: format!(
            "Table 4: Regular vs. Light-weight Schedules (2-D DSMC, {} steps)",
            scale.dsmc2d_steps
        ),
        headers,
        rows,
    }
}

// ===================================================================== Table 5 =========

/// Table 5: 3-D DSMC execution time with static partitioning, periodic recursive-bisection
/// remapping, and periodic chain-partitioner remapping (plus the sequential code).
pub fn table5_remapping(scale: &Scale) -> TableOutput {
    let (nx, ny, nz) = scale.dsmc3d_grid;
    let grid = CellGrid::new_3d(nx, ny, nz);
    let flow = FlowConfig::directional(11);
    let nparticles = scale.dsmc3d_particles;

    let mut headers = vec!["Strategy".to_string()];
    for &p in &scale.dsmc_procs {
        headers.push(format!("{p} procs"));
    }
    headers.push("Sequential".to_string());

    // Sequential reference: the modeled time is the collision + move work of the
    // single-address-space code under the same cost model (no communication).
    let seq_secs = {
        let particles = seed_particles(&grid, nparticles, &flow);
        let mut sim = SequentialDsmc::new(grid, particles, 0.4, 11);
        sim.run(scale.dsmc3d_steps);
        let cost = mpsim::CostModel::ipsc860();
        let work_units = sim.collisions as f64 * 2.0
            + sim.migrations as f64 * 0.2
            + sim.total_particles() as f64 * scale.dsmc3d_steps as f64 * 0.5;
        secs(work_units * cost.compute_unit_us)
    };

    let mut rows = Vec::new();
    for (label, strategy) in [
        ("Static partition (s)", RemapStrategy::Static),
        ("Recursive bisection (s)", RemapStrategy::RecursiveBisection),
        ("Chain partition (s)", RemapStrategy::Chain),
    ] {
        let mut row = vec![label.to_string()];
        for &p in &scale.dsmc_procs {
            let config = DsmcConfig {
                nsteps: scale.dsmc3d_steps,
                dt: 0.4,
                move_mode: MoveMode::Lightweight,
                remap: strategy,
                remap_interval: scale.dsmc3d_remap_interval,
                policy: None,
                monitor_group: None,
                seed: 11,
            };
            let out = run(MachineConfig::new(p), move |rank| {
                let particles = seed_particles(&grid, nparticles, &flow);
                dsmc::parallel::run_parallel(rank, &grid, &particles, &config)
            });
            row.push(secs(out.max_total_us()));
        }
        row.push(if strategy == RemapStrategy::Static {
            seq_secs.clone()
        } else {
            "-".to_string()
        });
        rows.push(row);
    }
    TableOutput {
        title: format!(
            "Table 5: Performance effects of remapping (3-D DSMC {nx}x{ny}x{nz}, {} molecules, {} steps, remap every {})",
            nparticles, scale.dsmc3d_steps, scale.dsmc3d_remap_interval
        ),
        headers,
        rows,
    }
}

// ===================================================================== Table 6 =========

/// The Fortran-D source of the Figure 10 non-bonded force template, instantiated for a
/// concrete atom count and neighbour-list size.
pub fn figure10_source(natoms: usize, list_len: usize) -> String {
    format!(
        "REAL x({n}), y({n}), dx({n}), dy({n})\n\
         INTEGER map({n}), inblo({m}), jnb({k})\n\
         C$ DECOMPOSITION reg({n})\n\
         C$ DISTRIBUTE reg(BLOCK)\n\
         C$ ALIGN x, y, dx, dy WITH reg\n\
         C$ DISTRIBUTE reg(map)\n\
         FORALL i = 1, {n}\n\
         FORALL j = inblo(i), inblo(i+1) - 1\n\
         REDUCE(SUM, dx(jnb(j)), x(jnb(j)) - x(i))\n\
         REDUCE(SUM, dy(jnb(j)), y(jnb(j)) - y(i))\n\
         REDUCE(SUM, dx(i), x(i) - x(jnb(j)))\n\
         REDUCE(SUM, dy(i), y(i) - y(jnb(j)))\n\
         END FORALL\n\
         END FORALL\n",
        n = natoms,
        m = natoms + 1,
        k = list_len
    )
}

/// Per-phase modeled times (seconds) of one Table 6 variant.
#[derive(Debug, Clone, Default)]
pub struct Fig10Times {
    pub partition: f64,
    pub remap: f64,
    pub inspector: f64,
    pub executor: f64,
}

impl Fig10Times {
    fn total(&self) -> f64 {
        self.partition + self.remap + self.inspector + self.executor
    }
}

/// Build the CHARMM-like system and its CSR non-bonded list used by the Table 6 template.
fn figure10_workload(cfg: &SystemConfig) -> (MolecularSystem, Vec<i64>, Vec<i64>) {
    let system = MolecularSystem::build(cfg);
    let list =
        charmm::nonbonded::build_neighbor_list(&system.positions, system.box_size, system.cutoff);
    let inblo: Vec<i64> = list.offsets.iter().map(|&o| o as i64 + 1).collect();
    let jnb: Vec<i64> = list.partners.iter().map(|&p| p as i64 + 1).collect();
    (system, inblo, jnb)
}

/// The hand-coded CHAOS version of the Figure 10 template: partition atoms, remap the four
/// data arrays, hash the CSR list, build one schedule, then run the loop `iters` times
/// (repartitioning every `repartition_every` iterations, alternating RCB and RIB).
fn figure10_hand(
    rank: &mut Rank,
    system: &MolecularSystem,
    inblo: &[i64],
    jnb: &[i64],
    iters: usize,
    repartition_every: usize,
) -> Fig10Times {
    let natoms = system.natoms();
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let mut times = Fig10Times::default();
    let block = BlockDist::new(natoms, nprocs);
    let my_block: Vec<usize> = block.local_globals(me).collect();

    // Current global values (the hand-coded node program keeps its owned slices; x/y are
    // coordinates, dx/dy the displacement accumulators).
    let mut x: Vec<f64> = my_block.iter().map(|&g| system.positions[g][0]).collect();
    let mut y: Vec<f64> = my_block.iter().map(|&g| system.positions[g][1]).collect();
    let mut dx = vec![0.0f64; my_block.len()];
    let mut dy = vec![0.0f64; my_block.len()];
    let mut owned_globals = my_block.clone();
    let mut ttable = TranslationTable::from_regular(&block);

    for iter in 0..iters {
        // Periodic repartition + remap (RCB/RIB alternating), as in the paper's Table 6.
        if iter % repartition_every == 0 {
            let t0 = rank.modeled();
            let coords: Vec<[f64; 3]> = owned_globals
                .iter()
                .enumerate()
                .map(|(l, _)| [x[l], y[l], 0.0])
                .collect();
            let weights: Vec<f64> = owned_globals
                .iter()
                .map(|&g| 1.0 + (inblo[g + 1] - inblo[g]) as f64)
                .collect();
            let parts = if (iter / repartition_every).is_multiple_of(2) {
                rcb_partition(rank, PartitionInput::new(&coords, &weights), nprocs)
            } else {
                rib_partition(rank, PartitionInput::new(&coords, &weights), nprocs)
            };
            times.partition += rank.modeled().since(&t0).total_us();

            let t0 = rank.modeled();
            // Publish the new map (block-distributed) and rebuild the translation table.
            let mut sends: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nprocs];
            for (l, &g) in owned_globals.iter().enumerate() {
                sends[block.owner(g)].push((g as u64, parts[l] as u64));
            }
            let received = rank.all_to_all(&sends);
            let my_range = block.local_range(me);
            let mut local_map = vec![0usize; my_range.len()];
            for (g, owner) in received.into_iter().flatten() {
                local_map[g as usize - my_range.start] = owner as usize;
            }
            let mut new_ttable =
                TranslationTable::replicated_from_map(rank, &local_map, &block).unwrap();
            let plan = build_remap(rank, &owned_globals, &mut new_ttable);
            x = remap_values(rank, &plan, &x, 0.0);
            y = remap_values(rank, &plan, &y, 0.0);
            dx = remap_values(rank, &plan, &dx, 0.0);
            dy = remap_values(rank, &plan, &dy, 0.0);
            owned_globals = new_ttable.owned_globals(rank);
            ttable = new_ttable;
            times.remap += rank.modeled().since(&t0).total_us();
        }

        // Inspector: hash the references of the owned iterations, build one schedule.
        let t0 = rank.modeled();
        let mut hash = IndexHashTable::new(me, owned_globals.len());
        let stamp = Stamp::new(0);
        let mut refs: Vec<usize> = Vec::new();
        for &i in &owned_globals {
            refs.push(i);
            for j in inblo[i]..inblo[i + 1] {
                refs.push((jnb[(j - 1) as usize] - 1) as usize);
            }
        }
        let local_refs = hash.hash_in_replicated(rank, &ttable, &refs, stamp);
        let sched = chaos::build_schedule_from_table(rank, &hash, StampQuery::single(stamp));
        times.inspector += rank.modeled().since(&t0).total_us();

        // Executor: gather x, y; run the loop; scatter-add dx, dy.
        let t0 = rank.modeled();
        let ghost = sched.ghost_len();
        let mut xg = DistArray::new(x.clone(), ghost);
        let mut yg = DistArray::new(y.clone(), ghost);
        let mut dxg = DistArray::new(dx.clone(), ghost);
        let mut dyg = DistArray::new(dy.clone(), ghost);
        gather(rank, &sched, &mut xg);
        gather(rank, &sched, &mut yg);
        let mut cursor = 0usize;
        let mut work = 0usize;
        for (l, &i) in owned_globals.iter().enumerate() {
            let ri = local_refs[cursor];
            cursor += 1;
            debug_assert_eq!(ri, LocalRef(l));
            for _j in inblo[i]..inblo[i + 1] {
                let rj = local_refs[cursor];
                cursor += 1;
                let ddx = xg[rj] - xg[ri];
                let ddy = yg[rj] - yg[ri];
                dxg[rj] += ddx;
                dyg[rj] += ddy;
                dxg[ri] -= ddx;
                dyg[ri] -= ddy;
                work += 4;
            }
        }
        rank.charge_compute(work as f64);
        scatter_add(rank, &sched, &mut dxg);
        scatter_add(rank, &sched, &mut dyg);
        dx = dxg.owned().to_vec();
        dy = dyg.owned().to_vec();
        times.executor += rank.modeled().since(&t0).total_us();
    }
    times
}

/// The compiler-generated version: the Figure 10 Fortran-D program compiled by `fortrand`
/// and executed the same number of iterations, with the host applying the partitioner and
/// the `DISTRIBUTE reg(map)` directive on the same cadence.
fn figure10_compiled(
    rank: &mut Rank,
    system: &MolecularSystem,
    inblo: &[i64],
    jnb: &[i64],
    iters: usize,
    repartition_every: usize,
) -> Fig10Times {
    let natoms = system.natoms();
    let nprocs = rank.nprocs();
    let source = figure10_source(natoms, jnb.len());
    let lowered = fortrand::compile(&source).expect("figure 10 template compiles");
    let mut exec = Executor::new(rank, &lowered);
    exec.set_integer_array("INBLO", inblo);
    exec.set_integer_array("JNB", jnb);
    exec.set_integer_array("MAP", &vec![0i64; natoms]);
    exec.set_real_array(
        "X",
        &system.positions.iter().map(|p| p[0]).collect::<Vec<_>>(),
    );
    exec.set_real_array(
        "Y",
        &system.positions.iter().map(|p| p[1]).collect::<Vec<_>>(),
    );
    exec.set_real_array("DX", &vec![0.0; natoms]);
    exec.set_real_array("DY", &vec![0.0; natoms]);
    // steps: [Distribute(BLOCK), Distribute(map), Loop]
    exec.run_step(rank, 0);

    let mut partition_us = 0.0;
    let weights: Vec<f64> = (0..natoms)
        .map(|g| 1.0 + (inblo[g + 1] - inblo[g]) as f64)
        .collect();
    for iter in 0..iters {
        if iter % repartition_every == 0 {
            // Host-side extrinsic partitioner call (Figure 10's statement S1), then the
            // DISTRIBUTE reg(map) directive.
            let t0 = rank.modeled();
            let block = BlockDist::new(natoms, nprocs);
            let my_block: Vec<usize> = block.local_globals(rank.rank()).collect();
            let coords: Vec<[f64; 3]> = my_block
                .iter()
                .map(|&g| [system.positions[g][0], system.positions[g][1], 0.0])
                .collect();
            let w: Vec<f64> = my_block.iter().map(|&g| weights[g]).collect();
            let parts = if (iter / repartition_every).is_multiple_of(2) {
                rcb_partition(rank, PartitionInput::new(&coords, &w), nprocs)
            } else {
                rib_partition(rank, PartitionInput::new(&coords, &w), nprocs)
            };
            // Assemble the replicated map array from every rank's fragment.
            let packed: Vec<(u64, u64)> = my_block
                .iter()
                .zip(&parts)
                .map(|(&g, &p)| (g as u64, p as u64))
                .collect();
            let gathered = rank.all_gather(&packed);
            let mut map = vec![0i64; natoms];
            for part in gathered {
                for (g, p) in part {
                    map[g as usize] = p as i64;
                }
            }
            partition_us += rank.modeled().since(&t0).total_us();
            exec.set_integer_array("MAP", &map);
            exec.run_step(rank, 1); // DISTRIBUTE reg(map)
        }
        exec.run_step(rank, 2); // the FORALL loop
    }
    let phases = exec.phases();
    Fig10Times {
        partition: partition_us,
        remap: phases.remap.total_us(),
        inspector: phases.inspector.total_us(),
        executor: phases.executor.total_us(),
    }
}

/// Table 6: hand-coded versus compiler-generated CHARMM non-bonded loop.
pub fn table6_compiler_charmm(scale: &Scale) -> TableOutput {
    let headers = [
        "Version / Procs",
        "Partition (s)",
        "Remap (s)",
        "Inspector (s)",
        "Executor (s)",
        "Total (s)",
    ]
    .map(String::from)
    .to_vec();
    let mut rows = Vec::new();
    let iters = scale.charmm_steps.max(4);
    let repartition_every = (iters / 2).max(2);
    for &p in &scale.compiler_procs {
        for hand in [true, false] {
            let cfg = scale.charmm.clone();
            let out = run(MachineConfig::new(p), move |rank| {
                let (system, inblo, jnb) = figure10_workload(&cfg);
                if hand {
                    figure10_hand(rank, &system, &inblo, &jnb, iters, repartition_every)
                } else {
                    figure10_compiled(rank, &system, &inblo, &jnb, iters, repartition_every)
                }
            });
            let max = |f: &dyn Fn(&Fig10Times) -> f64| -> f64 {
                out.results.iter().map(f).fold(0.0, f64::max)
            };
            rows.push(vec![
                format!(
                    "{} ({p} procs)",
                    if hand { "Hand Coded" } else { "Compiler" }
                ),
                secs(max(&|t| t.partition)),
                secs(max(&|t| t.remap)),
                secs(max(&|t| t.inspector)),
                secs(max(&|t| t.executor)),
                secs(max(&|t| t.total())),
            ]);
        }
    }
    TableOutput {
        title: format!(
            "Table 6: Hand-Coded vs. Compiler-Generated CHARMM non-bonded loop ({} atoms, {iters} iterations, redistributed every {repartition_every})",
            scale.charmm.total_atoms()
        ),
        headers,
        rows,
    }
}

// ===================================================================== Table 7 =========

/// The Fortran-D source of the Figure 11 DSMC particle-movement template.
pub fn figure11_source(nparticles: usize, ncells: usize) -> String {
    format!(
        "REAL vel({np}), newvel({nc}), newsize({nc})\n\
         INTEGER icell({np})\n\
         C$ DECOMPOSITION parts({np})\n\
         C$ DECOMPOSITION cells({nc})\n\
         C$ DISTRIBUTE parts(BLOCK)\n\
         C$ DISTRIBUTE cells(BLOCK)\n\
         C$ ALIGN vel WITH parts\n\
         C$ ALIGN newvel, newsize WITH cells\n\
         FORALL j = 1, {nc}\n\
         newsize(j) = 0\n\
         END FORALL\n\
         FORALL i = 1, {np}\n\
         REDUCE(APPEND, newvel(icell(i)), vel(i))\n\
         END FORALL\n\
         FORALL i = 1, {np}\n\
         REDUCE(SUM, newsize(icell(i)), 1)\n\
         END FORALL\n",
        np = nparticles,
        nc = ncells
    )
}

/// Deterministic per-step cell assignment for the Table 7 template: each particle drifts
/// through the cell space, so the indirection array changes every step.
fn template_cells_at_step(nparticles: usize, ncells: usize, step: usize) -> Vec<i64> {
    (0..nparticles)
        .map(|i| (((i * 7 + step * 13 + i / 3) % ncells) + 1) as i64)
        .collect()
}

/// Results of one Table 7 variant (modeled seconds).
#[derive(Debug, Clone, Default)]
pub struct Fig11Times {
    pub reduce_append: f64,
    pub total: f64,
}

/// Compiler-generated version of the MOVE template: the three lowered FORALLs of
/// Figure 11 run every step (the size-recomputation loop is the extra communication the
/// paper attributes to the compiler-generated code).
fn figure11_compiled(rank: &mut Rank, np: usize, nc: usize, steps: usize) -> Fig11Times {
    let source = figure11_source(np, nc);
    let lowered = fortrand::compile(&source).expect("figure 11 template compiles");
    let mut exec = Executor::new(rank, &lowered);
    let vel: Vec<f64> = (0..np).map(|i| i as f64 * 0.5).collect();
    exec.set_real_array("VEL", &vel);
    exec.set_real_array("NEWSIZE", &vec![0.0; nc]);
    exec.set_integer_array("ICELL", &template_cells_at_step(np, nc, 0));
    // steps: [Distribute(parts BLOCK), Distribute(cells BLOCK), zero loop, append loop, count loop]
    exec.run_step(rank, 0);
    exec.run_step(rank, 1);
    let start = rank.modeled();
    let mut append_us = 0.0;
    for step in 0..steps {
        exec.set_integer_array("ICELL", &template_cells_at_step(np, nc, step));
        exec.clear_buckets("NEWVEL");
        exec.run_step(rank, 2); // newsize(j) = 0
        let t0 = rank.modeled();
        exec.run_step(rank, 3); // REDUCE(APPEND, ...)
        append_us += rank.modeled().since(&t0).total_us();
        exec.run_step(rank, 4); // recompute newsize with a REDUCE(SUM) loop
    }
    Fig11Times {
        reduce_append: append_us,
        total: rank.modeled().since(&start).total_us(),
    }
}

/// Manually parallelised version of the same template: light-weight schedule +
/// `scatter_append` per step; the schedule's receive counts already give the new cell
/// sizes, so no extra loop or communication is needed.
fn figure11_manual(rank: &mut Rank, np: usize, nc: usize, steps: usize) -> Fig11Times {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let part_dist = BlockDist::new(np, nprocs);
    let cell_dist = BlockDist::new(nc, nprocs);
    let my_parts: Vec<usize> = part_dist.local_globals(me).collect();
    let vel: Vec<f64> = my_parts.iter().map(|&i| i as f64 * 0.5).collect();
    let start = rank.modeled();
    let mut append_us = 0.0;
    let mut _local_sizes: Vec<usize> = vec![0; cell_dist.local_size(me)];
    for step in 0..steps {
        let icell = template_cells_at_step(np, nc, step);
        let t0 = rank.modeled();
        let dests: Vec<usize> = my_parts
            .iter()
            .map(|&i| cell_dist.owner((icell[i] - 1) as usize))
            .collect();
        let payload: Vec<(u64, f64)> = my_parts
            .iter()
            .zip(&vel)
            .map(|(&i, &v)| ((icell[i] - 1) as u64, v))
            .collect();
        let sched = LightweightSchedule::build(rank, &dests);
        let arrivals = scatter_append(rank, &sched, &payload);
        // The data-migration primitive returns the arriving elements, so the new sizes
        // come for free.
        _local_sizes = vec![0; cell_dist.local_size(me)];
        for (cell, _v) in &arrivals {
            _local_sizes[cell_dist.local_offset(*cell as usize)] += 1;
        }
        rank.charge_compute(arrivals.len() as f64 * 0.3);
        append_us += rank.modeled().since(&t0).total_us();
    }
    Fig11Times {
        reduce_append: append_us,
        total: rank.modeled().since(&start).total_us(),
    }
}

/// Table 7: compiler-generated versus manually parallelised DSMC movement template.
pub fn table7_compiler_dsmc(scale: &Scale) -> TableOutput {
    let headers = ["Version / Procs", "Reduce append (s)", "Total (s)"]
        .map(String::from)
        .to_vec();
    let np = scale.template_particles;
    let nc = scale.template_cells;
    let steps = scale.template_steps;
    let mut rows = Vec::new();
    for &p in &scale.compiler_procs {
        for compiled in [true, false] {
            let out = run(MachineConfig::new(p), move |rank| {
                if compiled {
                    figure11_compiled(rank, np, nc, steps)
                } else {
                    figure11_manual(rank, np, nc, steps)
                }
            });
            let append = out
                .results
                .iter()
                .map(|t| t.reduce_append)
                .fold(0.0, f64::max);
            let total = out.results.iter().map(|t| t.total).fold(0.0, f64::max);
            rows.push(vec![
                format!(
                    "{} ({p} procs)",
                    if compiled {
                        "Compiler generated"
                    } else {
                        "Manually parallelized"
                    }
                ),
                secs(append),
                secs(total),
            ]);
        }
    }
    TableOutput {
        title: format!(
            "Table 7: Compiler-generated vs. manual DSMC movement template ({np} molecules, {nc} cells, {steps} steps)"
        ),
        headers,
        rows,
    }
}

/// A table generator: one of the `tableN_*` functions above.
pub type TableGenerator = fn(&Scale) -> TableOutput;

/// The registry of every table of the paper's evaluation, as `(id, generator)` pairs in
/// paper order.  The `all_tables` binary and [`all_tables`] both iterate this list, so a
/// new table added here appears in the printed output and in `BENCH_tables.json` alike.
pub fn table_generators() -> Vec<(&'static str, TableGenerator)> {
    vec![
        ("table1", table1_charmm_scaling as TableGenerator),
        ("table2", table2_charmm_preproc),
        ("table3", table3_schedule_merging),
        ("table4", table4_lightweight),
        ("table5", table5_remapping),
        ("table6", table6_compiler_charmm),
        ("table7", table7_compiler_dsmc),
    ]
}

/// Generate every table at the given scale.
pub fn all_tables(scale: &Scale) -> Vec<TableOutput> {
    table_generators()
        .into_iter()
        .map(|(_, generate)| generate(scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny scale so the table generators can be exercised in the test suite.
    fn tiny() -> Scale {
        Scale {
            charmm: SystemConfig::small(3),
            charmm_steps: 3,
            charmm_update: 2,
            charmm_procs: vec![1, 2, 4],
            dsmc2d_grids: vec![(8, 8)],
            dsmc2d_particles_per_cell: 4,
            dsmc2d_steps: 4,
            dsmc_procs: vec![2, 4],
            dsmc3d_grid: (8, 4, 4),
            dsmc3d_particles: 800,
            dsmc3d_steps: 10,
            dsmc3d_remap_interval: 4,
            compiler_procs: vec![2],
            template_particles: 200,
            template_cells: 32,
            template_steps: 4,
        }
    }

    #[test]
    fn table1_and_2_have_a_column_per_processor_count() {
        let s = tiny();
        let t1 = table1_charmm_scaling(&s);
        assert_eq!(t1.headers.len(), 1 + s.charmm_procs.len());
        assert_eq!(t1.rows.len(), 4);
        let t2 = table2_charmm_preproc(&s);
        assert_eq!(t2.rows.len(), 5);
        assert!(t2.render().contains("Schedule Regeneration"));
    }

    #[test]
    fn table4_lightweight_beats_regular() {
        let s = tiny();
        let t4 = table4_lightweight(&s);
        // Rows come in (regular, lightweight) pairs per grid; compare the largest
        // processor count column.
        let col = t4.headers.len() - 1;
        let regular: f64 = t4.rows[0][col].parse().unwrap();
        let light: f64 = t4.rows[1][col].parse().unwrap();
        assert!(
            light < regular,
            "light-weight schedules should be faster: {light} vs {regular}"
        );
    }

    #[test]
    fn table7_manual_is_at_least_as_fast_as_compiled() {
        let s = tiny();
        let t7 = table7_compiler_dsmc(&s);
        let compiled_total: f64 = t7.rows[0][2].parse().unwrap();
        let manual_total: f64 = t7.rows[1][2].parse().unwrap();
        assert!(manual_total <= compiled_total * 1.05);
    }

    #[test]
    fn figure_sources_compile() {
        assert!(fortrand::compile(&figure10_source(20, 40)).is_ok());
        assert!(fortrand::compile(&figure11_source(50, 10)).is_ok());
    }
}
