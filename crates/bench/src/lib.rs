//! Benchmark harnesses reproducing the evaluation of the SC'94 CHAOS paper.
//!
//! Every measured artifact in the paper's evaluation section is a table (Figures 1–11 are
//! code fragments and diagrams); each table has a generator in [`tables`] that sets up the
//! corresponding workload, runs it on the simulated machine over a sweep of processor
//! counts, and prints rows in the same format as the paper.  The binaries in `src/bin/`
//! and the `paper_tables` bench target are thin wrappers over these functions, so
//! `cargo bench --workspace` regenerates every table.
//!
//! Absolute numbers are *modeled* times from [`mpsim::CostModel`] (an iPSC/860-class
//! latency/bandwidth model), not wall-clock; the workloads are also scaled down from the
//! paper's (documented per table, controlled by [`Scale`]) so the whole suite runs in
//! minutes on a laptop.  What is expected to reproduce is the *shape* of each table —
//! which alternative wins, by roughly what factor, and where the trends cross.

//!
//! Three machine-readable artifacts make runs comparable across commits (schema documented
//! in `BENCHMARKS.md` at the repository root):
//!
//! * `BENCH_exchange.json` — written by the `exchange_microbench` binary (`--json`):
//!   steady-state engine loops with wall-clock, modeled time, [`mpsim::ExchangeStats`]
//!   counts, and the pack-buffer pool's allocation counters;
//! * `BENCH_tables.json` — written by `all_tables --json`: every paper table's rows plus
//!   per-table wall-clock;
//! * `BENCH_adapt.json` — written by `adapt_scenarios --json`: the remap-policy
//!   comparison of [`adapt`] with per-step load-balance trajectories (no wall-clock, so
//!   CI can gate on two runs being byte-identical);
//! * `BENCH_delta.json` — written by `delta_scenarios --json`: the incremental
//!   schedule-maintenance scenarios of [`delta`] (patch-vs-rebuild cost, byte-identity,
//!   cache lifecycle counters; no wall-clock, byte-identical across runs).  The same
//!   section also rides in `BENCH_exchange.json` so one artifact carries the whole
//!   engine story;
//! * `BENCH_compiler.json` — written by `compiler_parity --json`: the compiler-loop
//!   parity comparison of [`compiler`] (compiled-vs-hand executor message counts for
//!   the CHARMM and DSMC time loops; no wall-clock, byte-identical across runs,
//!   `--check` gates compiled == hand).

pub mod adapt;
pub mod collective;
pub mod compiler;
pub mod delta;
pub mod microbench;
pub mod preproc;
pub mod report;
pub mod tables;
pub mod workloads;

pub use adapt::{AdaptEntry, RampParams};
pub use collective::{CollectiveResult, COLLECTIVE_SWEEP_POINTS};
pub use compiler::ParityEntry;
pub use delta::{DriftEntry, DriftParams, DsmcDeltaEntry, DsmcDeltaParams};
pub use microbench::{MicrobenchConfig, MicrobenchResult};
pub use preproc::{PreprocResult, PREPROC_WORKERS};
pub use report::Json;
pub use tables::{Scale, TableOutput};
