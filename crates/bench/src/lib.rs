//! Benchmark harnesses reproducing the evaluation of the SC'94 CHAOS paper.
//!
//! Every measured artifact in the paper's evaluation section is a table (Figures 1–11 are
//! code fragments and diagrams); each table has a generator in [`tables`] that sets up the
//! corresponding workload, runs it on the simulated machine over a sweep of processor
//! counts, and prints rows in the same format as the paper.  The binaries in `src/bin/`
//! and the `paper_tables` bench target are thin wrappers over these functions, so
//! `cargo bench --workspace` regenerates every table.
//!
//! Absolute numbers are *modeled* times from [`mpsim::CostModel`] (an iPSC/860-class
//! latency/bandwidth model), not wall-clock; the workloads are also scaled down from the
//! paper's (documented per table, controlled by [`Scale`]) so the whole suite runs in
//! minutes on a laptop.  What is expected to reproduce is the *shape* of each table —
//! which alternative wins, by roughly what factor, and where the trends cross.

pub mod tables;
pub mod workloads;

pub use tables::{Scale, TableOutput};
