//! Collective-operation scaling sweep (`BENCH_exchange.json`, `collective_sweep`).
//!
//! The application-shaped loops of [`crate::microbench`] stop telling us anything new
//! past a few dozen host threads — their message counts grow with P² and the simulator
//! runs them for real.  The collectives are different: after the log-depth rewrite
//! ([`mpsim::topology`]) every one of them is O(log P) messages *per rank*, so the
//! machine itself can scale from the paper's P = 32 to P = 1024 and the sweep stays
//! cheap.  This module runs each collective shape at every point of
//! [`COLLECTIVE_SWEEP_POINTS`] and records, per iteration:
//!
//! * **modeled time** (max over ranks) — the simulated cost of the operation;
//! * **messages per rank** (max over ranks of messages *sent*) — the wire truth the
//!   log-depth claim is about.
//!
//! Four shapes are swept:
//!
//! * `all_gather` — [`mpsim::Rank::all_gather_one`], one `u64` contributed per rank.
//!   Exactly `ceil(log2 P)` messages per rank; its *payload* is Θ(P) by definition
//!   (every rank ends holding P values), so its modeled time is excluded from the
//!   constant-ratio time gate and pinned through its message count instead.
//! * `all_reduce` — [`mpsim::Rank::all_reduce_sum`] of one `f64` on the combining
//!   butterfly.  At most `ceil(log2 P)` messages per rank, O(1) payload per round.
//! * `negotiate` — [`mpsim::ExchangePlan::negotiate`] of a two-neighbour ring halo
//!   (the sparse-neighbourhood pattern of the DSMC MOVE phase: a constant number of
//!   silent pairs never materialises dense O(P) state).  `ceil(log2 P)` messages per
//!   rank regardless of P.
//! * `monitor_step` — one hierarchically-monitored controller observation
//!   ([`chaos::adapt::RemapController::observe_sample`] with square group-leader
//!   topology): samples reduce to group leaders, leaders all-gather, the decision
//!   broadcasts back down — O(log P) messages per monitored step.  The leaders must
//!   assemble the *true* per-rank sample vector (so their load-balance figure is
//!   bit-identical to flat monitoring), which is Θ(P) payload by definition; like
//!   `all_gather` it is therefore pinned through its message count, not the time gate.
//!
//! [`collective_scaling_violations`] is the `--check` gate: message counts must equal
//! (or, for the hierarchical monitor, stay within a small constant of) `ceil(log2 P)`,
//! and the O(1)-payload shapes' modeled per-iteration time at the largest point must
//! stay within [`MAX_TIME_RATIO`] of the smallest — the ratio a log-depth
//! implementation predicts (`log2 1024 / log2 32 = 2`, with headroom), and one any
//! linear-depth implementation (ratio 32) fails by an order of magnitude.

use std::time::Instant;

use chaos::adapt::{MonitorTopology, RemapController, RemapPolicy};
use mpsim::{run, tree_rounds, ExchangeBackend, ExchangePlan, GroupMap, MachineConfig};

use crate::report::Json;

/// Machine sizes of the collective sweep: the paper's largest iPSC/860 runs use 128
/// nodes; the log-depth collectives carry the simulated machine to 1024.
pub const COLLECTIVE_SWEEP_POINTS: &[usize] = &[32, 64, 128, 256, 512, 1024];

/// Thread stack size for the large-P machines: the collectives recurse shallowly and
/// keep per-rank state small, so 512 KiB per rank holds a 1024-rank machine in half a
/// gigabyte instead of the 8 GiB the default stacks would reserve.
pub const SWEEP_STACK_BYTES: usize = 512 * 1024;

/// Measured iterations per sweep point (after one warm-up iteration).
pub const SWEEP_ITERS: usize = 4;

/// Largest-vs-smallest modeled-time ratio the O(1)-payload shapes must stay under.
/// Log-depth predicts `ceil(log2 Pmax) / ceil(log2 Pmin)` (= 2 for 32 → 1024); 2.5
/// leaves headroom for the constant terms while any O(P) term fails immediately.
pub const MAX_TIME_RATIO: f64 = 2.5;

/// One collective shape measured at one machine size.
#[derive(Debug, Clone)]
pub struct CollectiveResult {
    /// Shape name: `all_gather`, `all_reduce`, `negotiate` or `monitor_step`.
    pub name: &'static str,
    /// Machine size.
    pub ranks: usize,
    /// Measured iterations (one warm-up iteration is excluded).
    pub measured_iters: usize,
    /// Host wall-clock of the whole run (setup + warm-up + measured), milliseconds.
    pub wall_ms: f64,
    /// Modeled time per iteration, max over ranks (µs).
    pub modeled_us_per_iter: f64,
    /// Messages sent per rank per iteration, max over ranks.
    pub msgs_per_rank_iter: u64,
    /// `ceil(log2 P)` — the round count the log-depth schedules predict.
    pub tree_rounds: usize,
    /// Whether the shape moves O(1) payload per rank, making its modeled time subject
    /// to the constant-ratio gate (`all_gather` replicates Θ(P) data by definition).
    pub constant_payload: bool,
}

impl CollectiveResult {
    /// Render as one entry of the `collective_sweep` array.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("backend", Json::str(ExchangeBackend::Modeled.name())),
            ("ranks", Json::uint(self.ranks as u64)),
            ("measured_iters", Json::uint(self.measured_iters as u64)),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("modeled_us_per_iter", Json::Num(self.modeled_us_per_iter)),
            ("msgs_per_rank_iter", Json::uint(self.msgs_per_rank_iter)),
            ("tree_rounds", Json::uint(self.tree_rounds as u64)),
            ("constant_payload", Json::Bool(self.constant_payload)),
        ])
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<13} {:>5} ranks  {:>2} msgs/rank/iter (log2 = {:>2})  modeled {:>9.1} us/iter  \
             wall {:>8.2} ms",
            self.name,
            self.ranks,
            self.msgs_per_rank_iter,
            self.tree_rounds,
            self.modeled_us_per_iter,
            self.wall_ms,
        )
    }
}

/// Run `iter` on a P-rank machine — one warm-up pass, then [`SWEEP_ITERS`] measured —
/// and fold the per-rank modeled-time and sent-message deltas into a result.
fn measure<F>(name: &'static str, ranks: usize, constant_payload: bool, iter: F) -> CollectiveResult
where
    F: Fn(&mut mpsim::Rank, usize) + Send + Sync + 'static,
{
    let start = Instant::now();
    // Pinned to the modeled backend: the sweep scales to P = 1024, past the
    // shared-memory fabric's MAX_SHARED_RANKS, and an environment-selected backend
    // would otherwise panic the large points.
    let outcome = run(
        MachineConfig::new(ranks)
            .with_stack_size(SWEEP_STACK_BYTES)
            .with_backend(ExchangeBackend::Modeled),
        move |rank| {
            iter(rank, 0);
            let t0 = rank.modeled();
            let msgs0 = rank.stats().msgs_sent;
            for k in 1..=SWEEP_ITERS {
                iter(rank, k);
            }
            let dt = rank.modeled().since(&t0).total_us();
            (dt, rank.stats().msgs_sent - msgs0)
        },
    );
    let mut modeled: f64 = 0.0;
    let mut msgs: u64 = 0;
    for &(dt, m) in &outcome.results {
        modeled = modeled.max(dt);
        msgs = msgs.max(m);
    }
    CollectiveResult {
        name,
        ranks,
        measured_iters: SWEEP_ITERS,
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        modeled_us_per_iter: modeled / SWEEP_ITERS as f64,
        msgs_per_rank_iter: msgs / SWEEP_ITERS as u64,
        tree_rounds: tree_rounds(ranks),
        constant_payload,
    }
}

/// Sweep every collective shape over the given machine sizes (tests use a short list;
/// the artifact uses [`COLLECTIVE_SWEEP_POINTS`]).
pub fn collective_sweep_at(points: &[usize]) -> Vec<CollectiveResult> {
    let mut out = Vec::new();
    for &p in points {
        out.push(measure("all_gather", p, false, |rank, k| {
            let v = rank.all_gather_one((rank.rank() + k) as u64);
            std::hint::black_box(&v);
        }));
        out.push(measure("all_reduce", p, true, |rank, k| {
            let s = rank.all_reduce_sum(rank.rank() as f64 + k as f64);
            std::hint::black_box(s);
        }));
        out.push(measure("negotiate", p, true, |rank, k| {
            // The DSMC MOVE halo shape: every rank talks to its two ring neighbours,
            // everyone else stays silent.  Counts vary with `k` so the plan cannot be
            // cached away.
            let n = rank.nprocs();
            let me = rank.rank();
            let mut counts = vec![0usize; n];
            counts[(me + 1) % n] = 5 + k;
            counts[(me + n - 1) % n] = 7 + k;
            let plan = ExchangePlan::negotiate(rank, counts);
            std::hint::black_box(&plan);
        }));
        // Θ(P) payload: leaders assemble the true per-rank sample vector (the price of
        // bit-identical load-balance figures), so only the message count is gated.
        out.push(measure("monitor_step", p, false, |rank, k| {
            // One hierarchically-monitored controller observation per "step".  The
            // controller is rebuilt per iteration (its state is O(window), not O(P));
            // the measured communication is identical to a long-running controller's
            // per-step cost.
            let group = GroupMap::square(rank.nprocs()).group_size();
            let mut ctrl = RemapController::new(RemapPolicy::Interval { every: 0 })
                .with_topology(MonitorTopology::Hierarchical { group });
            let d = ctrl.observe_sample(rank, rank.rank() as f64 + k as f64);
            std::hint::black_box(d);
        }));
    }
    out
}

/// The full sweep recorded in `BENCH_exchange.json`.
pub fn collective_sweep() -> Vec<CollectiveResult> {
    collective_sweep_at(COLLECTIVE_SWEEP_POINTS)
}

/// The `--check` gate over a sweep: message counts must match the log-depth schedules,
/// and the O(1)-payload shapes' modeled time must grow no faster than `ceil(log2 P)`
/// predicts (largest point within [`MAX_TIME_RATIO`] of the smallest).  Returns one
/// message per violation; empty means the machine scales.
pub fn collective_scaling_violations(results: &[CollectiveResult]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in results {
        let rounds = r.tree_rounds as u64;
        match r.name {
            // The point-to-point collectives send exactly one message per round.
            "all_gather" | "all_reduce" | "negotiate" => {
                if r.msgs_per_rank_iter != rounds {
                    violations.push(format!(
                        "{} (P={}): {} msgs/rank/iter, expected exactly ceil(log2 P) = {}",
                        r.name, r.ranks, r.msgs_per_rank_iter, rounds
                    ));
                }
            }
            // The busiest monitor rank (a group leader) gathers, disseminates and
            // broadcasts: its sends stay within a small constant of one per round.
            _ => {
                if r.msgs_per_rank_iter > rounds + 2 {
                    violations.push(format!(
                        "{} (P={}): {} msgs/rank/iter exceeds ceil(log2 P) + 2 = {}",
                        r.name,
                        r.ranks,
                        r.msgs_per_rank_iter,
                        rounds + 2
                    ));
                }
            }
        }
    }
    // Time gate: per shape, largest point vs smallest point.
    let names: Vec<&'static str> = {
        let mut ns: Vec<&'static str> = Vec::new();
        for r in results {
            if !ns.contains(&r.name) {
                ns.push(r.name);
            }
        }
        ns
    };
    for name in names {
        let mut shape: Vec<&CollectiveResult> = results
            .iter()
            .filter(|r| r.name == name && r.constant_payload)
            .collect();
        shape.sort_by_key(|r| r.ranks);
        if let (Some(first), Some(last)) = (shape.first(), shape.last()) {
            if first.ranks < last.ranks {
                let ratio = last.modeled_us_per_iter / first.modeled_us_per_iter;
                if ratio > MAX_TIME_RATIO {
                    violations.push(format!(
                        "{}: modeled time grew {ratio:.2}x from P={} to P={} \
                         (log-depth bound is {MAX_TIME_RATIO})",
                        name, first.ranks, last.ranks
                    ));
                }
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_message_counts_are_logarithmic() {
        // Small points keep the unit test fast; the binary runs the full sweep.
        let results = collective_sweep_at(&[4, 8, 16]);
        assert_eq!(results.len(), 12);
        let violations = collective_scaling_violations(&results);
        assert!(violations.is_empty(), "{violations:?}");
        for r in &results {
            assert_eq!(r.tree_rounds, tree_rounds(r.ranks));
            assert!(r.modeled_us_per_iter > 0.0);
            match r.name {
                "all_gather" | "all_reduce" | "negotiate" => {
                    assert_eq!(r.msgs_per_rank_iter, r.tree_rounds as u64);
                }
                "monitor_step" => assert!(r.msgs_per_rank_iter <= r.tree_rounds as u64 + 2),
                other => panic!("unexpected shape {other}"),
            }
        }
    }

    #[test]
    fn gate_catches_linear_message_growth() {
        let mut results = collective_sweep_at(&[4]);
        assert!(collective_scaling_violations(&results).is_empty());
        results[1].msgs_per_rank_iter = results[1].ranks as u64 - 1; // all_reduce gone flat
        assert_eq!(collective_scaling_violations(&results).len(), 1);
    }

    #[test]
    fn gate_catches_superlogarithmic_time_growth() {
        let mut results = collective_sweep_at(&[4, 16]);
        assert!(collective_scaling_violations(&results).is_empty());
        let idx = results
            .iter()
            .position(|r| r.name == "negotiate" && r.ranks == 16)
            .unwrap();
        results[idx].modeled_us_per_iter *= 100.0;
        let violations = collective_scaling_violations(&results);
        assert!(
            violations.iter().any(|v| v.contains("negotiate")),
            "{violations:?}"
        );
    }

    #[test]
    fn report_entry_carries_every_field() {
        let r = collective_sweep_at(&[4]).remove(0);
        let text = r.to_json().render_pretty();
        for key in [
            "\"name\"",
            "\"backend\": \"modeled\"",
            "\"ranks\"",
            "\"modeled_us_per_iter\"",
            "\"msgs_per_rank_iter\"",
            "\"tree_rounds\"",
            "\"constant_payload\"",
        ] {
            assert!(text.contains(key), "missing {key} in {text}");
        }
        assert!(!r.summary_line().is_empty());
    }
}
