//! Steady-state microbenchmarks of the unified exchange engine.
//!
//! Every time-stepped application in the paper settles into the same shape: a loop that
//! executes the *same* communication pattern over and over (CHARMM's gather/scatter per
//! time step, DSMC's append per move phase, CHARMM's remap of several arrays with one
//! plan).  These harnesses reproduce the three shapes on a small machine and measure what
//! the engine's pack-buffer pool does to them:
//!
//! * [`gather_scatter_steady`] — one regular schedule, `gather` + `scatter_add` per
//!   iteration (the CHARMM non-bonded loop's executor half);
//! * [`scatter_append_steady`] — a fresh [`LightweightSchedule`] + `scatter_append` per
//!   iteration (the DSMC MOVE phase);
//! * [`remap_steady`] — one [`RemapPlan`], `remap_values` per iteration (CHARMM remapping
//!   its coordinate/force arrays after a repartition).
//!
//! Each returns a [`MicrobenchResult`] carrying wall-clock time, modeled time, per-run
//! [`ExchangeStats`], and the pool counters split into *total* and *steady-state* (after
//! warm-up) windows.  The zero-allocation steady state — `pool_steady.allocations == 0` —
//! is asserted by the pool smoke tests and reported by the `exchange_microbench` binary
//! (see `BENCHMARKS.md` at the repository root).

use std::time::Instant;

use chaos::prelude::*;
use mpsim::{run, ExchangeStats, MachineConfig, PackPoolStats, Rank};

use crate::report::Json;

/// Knobs of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchConfig {
    /// Simulated machine size.  The committed `BENCH_exchange.json` uses 8 ranks.
    pub ranks: usize,
    /// Iterations executed before the measurement window opens (pool warm-up).
    pub warmup_iters: usize,
    /// Iterations inside the measurement window.
    pub measured_iters: usize,
    /// Global element count for the gather/scatter and remap loops.
    pub elements: usize,
    /// Items per rank for the append loop.
    pub items_per_rank: usize,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig {
            ranks: 8,
            warmup_iters: 4,
            measured_iters: 32,
            elements: 4096,
            items_per_rank: 512,
        }
    }
}

/// The measured outcome of one steady-state loop.
#[derive(Debug, Clone)]
pub struct MicrobenchResult {
    /// Benchmark name (stable across runs; the JSON key CI compares on).
    pub name: &'static str,
    /// Machine size the loop ran on.
    pub ranks: usize,
    /// Warm-up iterations excluded from the measurement window.
    pub warmup_iters: usize,
    /// Measured iterations.
    pub measured_iters: usize,
    /// Host wall-clock time of the whole run (setup + warm-up + measured), milliseconds.
    pub wall_ms: f64,
    /// Modeled compute time of the measurement window, max over ranks (µs).
    pub modeled_compute_us: f64,
    /// Modeled communication time of the measurement window, max over ranks (µs).
    pub modeled_comm_us: f64,
    /// Modeled total time of the measurement window, max over ranks (µs).
    pub modeled_total_us: f64,
    /// Engine message/byte counts of the measurement window, summed over ranks.
    pub exchange: ExchangeStats,
    /// Pack-buffer pool counters of the whole run, summed over ranks.
    pub pool_total: PackPoolStats,
    /// Pack-buffer pool counters of the measurement window only, summed over ranks.
    pub pool_steady: PackPoolStats,
}

impl MicrobenchResult {
    /// What a pool-less engine would have allocated over the whole run: one fresh buffer
    /// per buffer request.  This is the pre-pool baseline the acceptance comparison uses.
    pub fn baseline_allocations(&self) -> u64 {
        self.pool_total.requests()
    }

    /// Percentage of send-buffer allocations the pool eliminated relative to the
    /// pool-less baseline.
    pub fn allocation_reduction_pct(&self) -> f64 {
        let base = self.baseline_allocations();
        if base == 0 {
            0.0
        } else {
            100.0 * self.pool_total.reuses as f64 / base as f64
        }
    }

    /// Render this result as one entry of the `BENCH_exchange.json` `benches` array.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("ranks", Json::uint(self.ranks as u64)),
            ("warmup_iters", Json::uint(self.warmup_iters as u64)),
            ("measured_iters", Json::uint(self.measured_iters as u64)),
            ("wall_ms", Json::Num(self.wall_ms)),
            (
                "modeled_us",
                Json::obj(vec![
                    ("compute", Json::Num(self.modeled_compute_us)),
                    ("comm", Json::Num(self.modeled_comm_us)),
                    ("total", Json::Num(self.modeled_total_us)),
                ]),
            ),
            (
                "exchange",
                Json::obj(vec![
                    ("msgs_sent", Json::uint(self.exchange.msgs_sent)),
                    ("msgs_received", Json::uint(self.exchange.msgs_received)),
                    ("bytes_sent", Json::uint(self.exchange.bytes_sent)),
                    ("bytes_received", Json::uint(self.exchange.bytes_received)),
                ]),
            ),
            (
                "pool",
                Json::obj(vec![
                    ("allocations", Json::uint(self.pool_total.allocations)),
                    ("reuses", Json::uint(self.pool_total.reuses)),
                    (
                        "steady_allocations",
                        Json::uint(self.pool_steady.allocations),
                    ),
                    ("steady_reuses", Json::uint(self.pool_steady.reuses)),
                    (
                        "baseline_allocations",
                        Json::uint(self.baseline_allocations()),
                    ),
                    (
                        "reduction_vs_baseline_pct",
                        Json::Num(round2(self.allocation_reduction_pct())),
                    ),
                ]),
            ),
        ])
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<24} {} ranks  {:>3} iters  wall {:>8.2} ms  modeled {:>10.1} us  \
             allocs {:>5} (steady {:>2})  baseline {:>6}  -{:.1}%",
            self.name,
            self.ranks,
            self.measured_iters,
            self.wall_ms,
            self.modeled_total_us,
            self.pool_total.allocations,
            self.pool_steady.allocations,
            self.baseline_allocations(),
            self.allocation_reduction_pct(),
        )
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Per-rank instrumentation shared by the three loops: run `iter` for the warm-up window,
/// snapshot, run it for the measurement window, and return the deltas.
fn instrumented_loop(
    rank: &mut Rank,
    cfg: &MicrobenchConfig,
    mut iter: impl FnMut(&mut Rank) -> ExchangeStats,
) -> (PackPoolStats, PackPoolStats, ExchangeStats, f64, f64, f64) {
    for _ in 0..cfg.warmup_iters {
        iter(rank);
    }
    let pool_at_warm = rank.pool_stats();
    let t0 = rank.modeled();
    let mut exch = ExchangeStats::default();
    for _ in 0..cfg.measured_iters {
        exch = exch.merged(&iter(rank));
    }
    let dt = rank.modeled().since(&t0);
    let pool_at_end = rank.pool_stats();
    (
        pool_at_warm,
        pool_at_end,
        exch,
        dt.compute_us,
        dt.comm_us,
        dt.total_us(),
    )
}

/// Fold the per-rank instrumentation tuples and the run's pool totals into a result.
fn collect(
    name: &'static str,
    cfg: &MicrobenchConfig,
    wall_ms: f64,
    outcome: mpsim::RunOutcome<(PackPoolStats, PackPoolStats, ExchangeStats, f64, f64, f64)>,
) -> MicrobenchResult {
    let mut exchange = ExchangeStats::default();
    let mut pool_steady = PackPoolStats::default();
    let mut compute: f64 = 0.0;
    let mut comm: f64 = 0.0;
    let mut total: f64 = 0.0;
    for (warm, end, exch, c, m, t) in &outcome.results {
        exchange = exchange.merged(exch);
        pool_steady = pool_steady.merged(&end.since(warm));
        compute = compute.max(*c);
        comm = comm.max(*m);
        total = total.max(*t);
    }
    MicrobenchResult {
        name,
        ranks: cfg.ranks,
        warmup_iters: cfg.warmup_iters,
        measured_iters: cfg.measured_iters,
        wall_ms,
        modeled_compute_us: compute,
        modeled_comm_us: comm,
        modeled_total_us: total,
        exchange,
        pool_total: outcome.pool_totals(),
        pool_steady,
    }
}

/// The CHARMM executor shape: one regular schedule built by the inspector, then a
/// `gather` + `scatter_add` pair per iteration.
pub fn gather_scatter_steady(cfg: &MicrobenchConfig) -> MicrobenchResult {
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let outcome = run(MachineConfig::new(cfg.ranks), move |rank| {
        let n = cfg2.elements;
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut insp = Inspector::new(&ttable, rank.rank());
        // Every rank references a strided slice of the whole array: plenty of
        // off-processor traffic, fixed pattern — the post-inspector steady state.
        let me = rank.rank();
        let pattern: Vec<usize> = (0..n / 2).map(|i| (i * 7 + me * 13 + 1) % n).collect();
        let refs = insp.hash_indices(rank, &pattern, Stamp::new(0));
        let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
        let owned: Vec<f64> = dist.local_globals(me).map(|g| g as f64).collect();
        let mut x = DistArray::new(owned, sched.ghost_len());
        instrumented_loop(rank, &cfg2, move |rank| {
            let g = gather(rank, &sched, &mut x);
            for &r in &refs {
                x[r] += 1.0;
            }
            let s = scatter_add(rank, &sched, &mut x);
            g.merged(&s)
        })
    });
    collect(
        "gather_scatter_steady",
        cfg,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// The DSMC MOVE shape: items drift between ranks, so a fresh light-weight schedule is
/// built every iteration and `scatter_append` moves the items.
pub fn scatter_append_steady(cfg: &MicrobenchConfig) -> MicrobenchResult {
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let outcome = run(MachineConfig::new(cfg.ranks), move |rank| {
        let me = rank.rank();
        let nprocs = rank.nprocs();
        let mut items: Vec<u64> = (0..cfg2.items_per_rank)
            .map(|k| (me * cfg2.items_per_rank + k) as u64)
            .collect();
        let mut step = 0u64;
        instrumented_loop(rank, &cfg2, move |rank| {
            step += 1;
            let dests: Vec<usize> = items
                .iter()
                .map(|&id| ((id + step) % nprocs as u64) as usize)
                .collect();
            let sched = LightweightSchedule::build(rank, &dests);
            let before = rank.stats();
            items = scatter_append(rank, &sched, &items);
            let after = rank.stats();
            ExchangeStats {
                msgs_sent: after.msgs_sent - before.msgs_sent,
                msgs_received: after.msgs_received - before.msgs_received,
                bytes_sent: after.bytes_sent - before.bytes_sent,
                bytes_received: after.bytes_received - before.bytes_received,
            }
        })
    });
    collect(
        "scatter_append_steady",
        cfg,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// The CHARMM remap shape: one plan (block → cyclic), then `remap_values` per iteration —
/// the paper remaps every array aligned with a repartitioned template using one plan.
pub fn remap_steady(cfg: &MicrobenchConfig) -> MicrobenchResult {
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let outcome = run(MachineConfig::new(cfg.ranks), move |rank| {
        let n = cfg2.elements;
        let me = rank.rank();
        let old = BlockDist::new(n, rank.nprocs());
        let new = CyclicDist::new(n, rank.nprocs());
        let mut new_table = TranslationTable::from_regular(&new);
        let old_globals: Vec<usize> = old.local_globals(me).collect();
        let old_local: Vec<f64> = old_globals.iter().map(|&g| g as f64).collect();
        let plan = build_remap(rank, &old_globals, &mut new_table);
        instrumented_loop(rank, &cfg2, move |rank| {
            let before = rank.stats();
            let moved = remap_values(rank, &plan, &old_local, 0.0);
            std::hint::black_box(&moved);
            let after = rank.stats();
            ExchangeStats {
                msgs_sent: after.msgs_sent - before.msgs_sent,
                msgs_received: after.msgs_received - before.msgs_received,
                bytes_sent: after.bytes_sent - before.bytes_sent,
                bytes_received: after.bytes_received - before.bytes_received,
            }
        })
    });
    collect(
        "remap_steady",
        cfg,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// Run all three steady-state loops at the given configuration.
pub fn all_microbenches(cfg: &MicrobenchConfig) -> Vec<MicrobenchResult> {
    vec![
        gather_scatter_steady(cfg),
        scatter_append_steady(cfg),
        remap_steady(cfg),
    ]
}

/// Render a list of results as the `BENCH_exchange.json` document.
pub fn exchange_report(results: &[MicrobenchResult]) -> Json {
    Json::obj(vec![
        ("schema", Json::str("chaos-bench/exchange/v1")),
        (
            "generated_by",
            Json::str("cargo run --release -p chaos-bench --bin exchange_microbench -- --json"),
        ),
        (
            "benches",
            Json::Arr(results.iter().map(MicrobenchResult::to_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MicrobenchConfig {
        MicrobenchConfig {
            ranks: 4,
            warmup_iters: 2,
            measured_iters: 4,
            elements: 256,
            items_per_rank: 64,
        }
    }

    #[test]
    fn gather_scatter_moves_data_and_reports() {
        let r = gather_scatter_steady(&tiny());
        assert_eq!(r.ranks, 4);
        assert!(r.exchange.msgs_sent > 0);
        assert!(r.exchange.bytes_sent > 0);
        assert!(r.modeled_total_us > 0.0);
        // The measurement window must not allocate: the pool is warm.
        assert_eq!(r.pool_steady.allocations, 0);
    }

    #[test]
    fn report_document_carries_every_bench() {
        let results = vec![gather_scatter_steady(&tiny()), remap_steady(&tiny())];
        let doc = exchange_report(&results);
        let text = doc.render_pretty();
        assert!(text.contains("\"gather_scatter_steady\""));
        assert!(text.contains("\"remap_steady\""));
        assert!(text.contains("\"steady_allocations\": 0"));
    }
}
