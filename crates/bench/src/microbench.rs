//! Steady-state microbenchmarks of the unified exchange engine.
//!
//! Every time-stepped application in the paper settles into the same shape: a loop that
//! executes the *same* communication pattern over and over (CHARMM's gather/scatter per
//! time step, DSMC's append per move phase, CHARMM's remap of several arrays with one
//! plan).  These harnesses reproduce the three shapes on a small machine and measure what
//! the engine's pack-buffer pool does to them:
//!
//! * [`gather_scatter_steady`] — one regular schedule, `gather` + `scatter_add` per
//!   iteration (the CHARMM non-bonded loop's executor half);
//! * [`fused_gather_scatter_steady`] — the same schedule moving *three* arrays per
//!   iteration through the fused multi-array paths (`gather_multi` +
//!   `scatter_add_multi`): one message per pair per direction where the unfused executor
//!   would send three (the post-fusion CHARMM step shape);
//! * [`overlap_gather_steady`] — the split-phase shape: `gather_start`, a compute block
//!   standing in for the force loop, `gather_finish`, then a blocking `scatter_add`
//!   (the CHARMM separate-schedule step with the bonded loop overlapping the non-bonded
//!   gather);
//! * [`scatter_append_steady`] — a fresh [`LightweightSchedule`] + `scatter_append` per
//!   iteration (the DSMC MOVE phase);
//! * [`remap_steady`] — one [`RemapPlan`], `remap_values` per iteration (CHARMM remapping
//!   its coordinate/force arrays after a repartition).
//!
//! Each returns a [`MicrobenchResult`] carrying wall-clock time, modeled time, per-run
//! [`ExchangeStats`], and the pool counters — send-side pack buffers *and* receive-side
//! decode scratch — split into *total* and *steady-state* (after warm-up) windows.  The
//! zero-allocation steady state (`pool_steady.allocations == 0` always;
//! `pool_steady.decode_allocations == 0` for every loop whose placement only borrows, see
//! [`MicrobenchResult::receive_owned`]) is asserted by the pool smoke tests, checked by
//! `exchange_microbench --check` in CI, and reported in `BENCH_exchange.json`.
//!
//! Two sweeps extend the fixed 8-rank loops the way the paper's tables sweep processor
//! counts: [`rank_sweep`] runs the gather/scatter and append shapes at P = 2–64 ranks,
//! and [`element_size_sweep`] runs them with 8-, 24- and 64-byte payload elements
//! (exercising the bulk codec's chunked encode/decode paths).  The collectives scale
//! further — [`crate::collective`] sweeps them to P = 1024.

use std::time::Instant;

use chaos::prelude::*;
use mpsim::{run, ExchangeBackend, ExchangeStats, MachineConfig, PackPoolStats, Rank};

use crate::report::Json;

/// Knobs of one microbenchmark run.
#[derive(Debug, Clone)]
pub struct MicrobenchConfig {
    /// Simulated machine size.  The committed `BENCH_exchange.json` uses 8 ranks.
    pub ranks: usize,
    /// Iterations executed before the measurement window opens (pool warm-up).
    pub warmup_iters: usize,
    /// Iterations inside the measurement window.
    pub measured_iters: usize,
    /// Global element count for the gather/scatter and remap loops.
    pub elements: usize,
    /// Items per rank for the append loop.
    pub items_per_rank: usize,
    /// Exchange backend the simulated machine runs on.  Defaults to the
    /// environment-selected backend (`MPSIM_BACKEND`); [`backend_sweep`] pins each
    /// explicitly to compare wall-clock.
    pub backend: ExchangeBackend,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig {
            ranks: 8,
            warmup_iters: 4,
            measured_iters: 32,
            elements: 4096,
            items_per_rank: 512,
            backend: ExchangeBackend::from_env(),
        }
    }
}

/// The measured outcome of one steady-state loop.
#[derive(Debug, Clone)]
pub struct MicrobenchResult {
    /// Benchmark name (stable across runs; the JSON key CI compares on).
    pub name: &'static str,
    /// Exchange backend the loop ran on (`"modeled"` or `"shared"`).
    pub backend: &'static str,
    /// Machine size the loop ran on.
    pub ranks: usize,
    /// Encoded payload element size in bytes (8 for the classic `f64`/`u64` loops).
    pub elem_bytes: usize,
    /// Whether the loop's placement takes ownership of its payloads (`Placed::into_vec`,
    /// as `scatter_append` must — the appended items outlive the call).  Ownership-taking
    /// loops legitimately show steady-state decode-scratch allocations; borrow-only loops
    /// must show zero, and the `--check` gate enforces exactly that split.
    pub receive_owned: bool,
    /// Warm-up iterations excluded from the measurement window.
    pub warmup_iters: usize,
    /// Measured iterations.
    pub measured_iters: usize,
    /// Host wall-clock time of the whole run (setup + warm-up + measured), milliseconds.
    pub wall_ms: f64,
    /// Host wall-clock of the measurement window per iteration, max over ranks
    /// (nanoseconds) — the number the backend comparison is about.  Unlike [`wall_ms`]
    /// it excludes machine setup and schedule construction, so it isolates the
    /// steady-state data path the backends differ on.
    ///
    /// [`wall_ms`]: MicrobenchResult::wall_ms
    pub wall_ns_per_iter: f64,
    /// Checksum of the loop's final data, summed over ranks.  Every harness arranges
    /// integer-valued (or dyadic-rational) `f64` contents whose sums are exact, so the
    /// fingerprint is independent of message arrival order and must be bit-identical
    /// across backends — the cheap cross-backend equivalence probe
    /// ([`backend_equivalence_violations`]); the exhaustive byte-identity pins live in
    /// the `backend_equivalence` integration tests.
    pub fingerprint: f64,
    /// Modeled compute time of the measurement window, max over ranks (µs).
    pub modeled_compute_us: f64,
    /// Modeled communication time of the measurement window, max over ranks (µs).
    pub modeled_comm_us: f64,
    /// Modeled total time of the measurement window, max over ranks (µs).
    pub modeled_total_us: f64,
    /// Engine message/byte counts of the measurement window, summed over ranks.
    pub exchange: ExchangeStats,
    /// Pack-buffer pool counters of the whole run, summed over ranks.
    pub pool_total: PackPoolStats,
    /// Pack-buffer pool counters of the measurement window only, summed over ranks.
    pub pool_steady: PackPoolStats,
}

impl MicrobenchResult {
    /// What a pool-less engine would have allocated over the whole run: one fresh buffer
    /// per buffer request, in both directions (send-side pack buffers plus receive-side
    /// decode scratch).  This is the pre-pool baseline the acceptance comparison uses.
    /// Counting both pools also keeps the metric meaningful on the shared-memory
    /// backend, whose POD fast path draws every message buffer from the decode-scratch
    /// pool and leaves the pack-buffer pool idle.
    pub fn baseline_allocations(&self) -> u64 {
        self.pool_total.requests() + self.pool_total.decode_requests()
    }

    /// Percentage of buffer allocations (both directions) the pools eliminated relative
    /// to the pool-less baseline.
    pub fn allocation_reduction_pct(&self) -> f64 {
        let base = self.baseline_allocations();
        if base == 0 {
            0.0
        } else {
            100.0 * (self.pool_total.reuses + self.pool_total.decode_reuses) as f64 / base as f64
        }
    }

    /// Messages sent per measured iteration, summed over ranks — the column that makes
    /// the fused paths' 3x message drop visible next to the unfused loops.
    pub fn msgs_per_iter(&self) -> u64 {
        if self.measured_iters == 0 {
            0
        } else {
            self.exchange.msgs_sent / self.measured_iters as u64
        }
    }

    /// Render this result as one entry of the `BENCH_exchange.json` `benches` array.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("name", Json::str(self.name)),
            ("backend", Json::str(self.backend)),
            ("ranks", Json::uint(self.ranks as u64)),
            ("elem_bytes", Json::uint(self.elem_bytes as u64)),
            ("receive_owned", Json::Bool(self.receive_owned)),
            ("warmup_iters", Json::uint(self.warmup_iters as u64)),
            ("measured_iters", Json::uint(self.measured_iters as u64)),
            ("wall_ms", Json::Num(self.wall_ms)),
            ("wall_ns_per_iter", Json::Num(self.wall_ns_per_iter.round())),
            ("fingerprint", Json::Num(self.fingerprint)),
            (
                "modeled_us",
                Json::obj(vec![
                    ("compute", Json::Num(self.modeled_compute_us)),
                    ("comm", Json::Num(self.modeled_comm_us)),
                    ("total", Json::Num(self.modeled_total_us)),
                ]),
            ),
            (
                "exchange",
                Json::obj(vec![
                    ("msgs_sent", Json::uint(self.exchange.msgs_sent)),
                    ("msgs_received", Json::uint(self.exchange.msgs_received)),
                    ("bytes_sent", Json::uint(self.exchange.bytes_sent)),
                    ("bytes_received", Json::uint(self.exchange.bytes_received)),
                    ("msgs_per_iter", Json::uint(self.msgs_per_iter())),
                ]),
            ),
            (
                "pool",
                Json::obj(vec![
                    ("allocations", Json::uint(self.pool_total.allocations)),
                    ("reuses", Json::uint(self.pool_total.reuses)),
                    (
                        "steady_allocations",
                        Json::uint(self.pool_steady.allocations),
                    ),
                    ("steady_reuses", Json::uint(self.pool_steady.reuses)),
                    (
                        "decode_allocations",
                        Json::uint(self.pool_total.decode_allocations),
                    ),
                    ("decode_reuses", Json::uint(self.pool_total.decode_reuses)),
                    (
                        "steady_decode_allocations",
                        Json::uint(self.pool_steady.decode_allocations),
                    ),
                    (
                        "steady_decode_reuses",
                        Json::uint(self.pool_steady.decode_reuses),
                    ),
                    (
                        "baseline_allocations",
                        Json::uint(self.baseline_allocations()),
                    ),
                    (
                        "reduction_vs_baseline_pct",
                        Json::Num(round2(self.allocation_reduction_pct())),
                    ),
                ]),
            ),
        ])
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<26} [{:<7}] {:>2} ranks  {:>2}B elems  {:>3} iters  {:>4} msgs/iter  \
             wall {:>8.2} ms ({:>9.0} ns/iter)  modeled {:>10.1} us  \
             allocs {:>5} (steady {:>2})  decode {:>5} (steady {:>3}{})  -{:.1}%",
            self.name,
            self.backend,
            self.ranks,
            self.elem_bytes,
            self.measured_iters,
            self.msgs_per_iter(),
            self.wall_ms,
            self.wall_ns_per_iter,
            self.modeled_total_us,
            self.pool_total.allocations,
            self.pool_steady.allocations,
            self.pool_total.decode_allocations,
            self.pool_steady.decode_allocations,
            if self.receive_owned { ", owned" } else { "" },
            self.allocation_reduction_pct(),
        )
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// The per-rank instrumentation of one measurement window.
struct RankMeasure {
    pool_warm: PackPoolStats,
    pool_end: PackPoolStats,
    exch: ExchangeStats,
    compute_us: f64,
    comm_us: f64,
    total_us: f64,
    /// Host wall-clock of this rank's measurement window, nanoseconds.
    wall_ns: u64,
}

/// Per-rank instrumentation shared by the loops: run `iter` for the warm-up window,
/// snapshot, run it for the measurement window (modeled *and* host wall-clock), and
/// return the deltas.
fn instrumented_loop(
    rank: &mut Rank,
    cfg: &MicrobenchConfig,
    mut iter: impl FnMut(&mut Rank) -> ExchangeStats,
) -> RankMeasure {
    for _ in 0..cfg.warmup_iters {
        iter(rank);
    }
    let pool_warm = rank.pool_stats();
    let t0 = rank.modeled();
    let wall0 = Instant::now();
    let mut exch = ExchangeStats::default();
    for _ in 0..cfg.measured_iters {
        exch = exch.merged(&iter(rank));
    }
    let wall_ns = wall0.elapsed().as_nanos() as u64;
    let dt = rank.modeled().since(&t0);
    RankMeasure {
        pool_warm,
        pool_end: rank.pool_stats(),
        exch,
        compute_us: dt.compute_us,
        comm_us: dt.comm_us,
        total_us: dt.total_us(),
        wall_ns,
    }
}

/// Fold the per-rank `(measure, fingerprint)` pairs and the run's pool totals into a
/// result.
fn collect(
    name: &'static str,
    cfg: &MicrobenchConfig,
    elem_bytes: usize,
    receive_owned: bool,
    wall_ms: f64,
    outcome: mpsim::RunOutcome<(RankMeasure, f64)>,
) -> MicrobenchResult {
    let mut exchange = ExchangeStats::default();
    let mut pool_steady = PackPoolStats::default();
    let mut compute: f64 = 0.0;
    let mut comm: f64 = 0.0;
    let mut total: f64 = 0.0;
    let mut wall_ns: u64 = 0;
    let mut fingerprint = 0.0f64;
    for (m, fp) in &outcome.results {
        exchange = exchange.merged(&m.exch);
        pool_steady = pool_steady.merged(&m.pool_end.since(&m.pool_warm));
        compute = compute.max(m.compute_us);
        comm = comm.max(m.comm_us);
        total = total.max(m.total_us);
        wall_ns = wall_ns.max(m.wall_ns);
        fingerprint += fp;
    }
    MicrobenchResult {
        name,
        backend: cfg.backend.name(),
        ranks: cfg.ranks,
        elem_bytes,
        receive_owned,
        warmup_iters: cfg.warmup_iters,
        measured_iters: cfg.measured_iters,
        wall_ms,
        wall_ns_per_iter: wall_ns as f64 / cfg.measured_iters.max(1) as f64,
        fingerprint,
        modeled_compute_us: compute,
        modeled_comm_us: comm,
        modeled_total_us: total,
        exchange,
        pool_total: outcome.pool_totals(),
        pool_steady,
    }
}

/// Per-rank setup shared by every gather/scatter-shaped harness: the inspector builds one
/// regular schedule over a strided slice of the whole array (plenty of off-processor
/// traffic, fixed pattern — the post-inspector steady state), returning the distribution,
/// the schedule and the local references of the access pattern.
fn build_strided_schedule(
    rank: &mut Rank,
    n: usize,
) -> (BlockDist, CommSchedule, Vec<chaos::LocalRef>) {
    let dist = BlockDist::new(n, rank.nprocs());
    let ttable = TranslationTable::from_regular(&dist);
    let mut insp = Inspector::new(&ttable, rank.rank());
    let me = rank.rank();
    let pattern: Vec<usize> = (0..n / 2).map(|i| (i * 7 + me * 13 + 1) % n).collect();
    let refs = insp.hash_indices(rank, &pattern, Stamp::new(0));
    let sched = insp.build_schedule(rank, StampQuery::single(Stamp::new(0)));
    (dist, sched, refs)
}

/// Shared core of the append-shaped harnesses: a fresh [`LightweightSchedule`] +
/// `scatter_append` per iteration.  `make` seeds the initial items from globally unique
/// ids; `dests_of(items, step, me, nprocs)` picks each item's destination per step, which
/// is the only thing the classic and element-size variants disagree on.
fn scatter_append_core<T: mpsim::Element>(
    name: &'static str,
    cfg: &MicrobenchConfig,
    make: fn(u64) -> T,
    dests_of: fn(&[T], u64, usize, usize) -> Vec<usize>,
    fp_of: fn(&T) -> f64,
) -> MicrobenchResult {
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let machine = MachineConfig::new(cfg.ranks).with_backend(cfg.backend);
    let outcome = run(machine, move |rank| {
        let me = rank.rank();
        let nprocs = rank.nprocs();
        let mut items: Vec<T> = (0..cfg2.items_per_rank)
            .map(|k| make((me * cfg2.items_per_rank + k) as u64))
            .collect();
        let mut step = 0u64;
        let m = instrumented_loop(rank, &cfg2, |rank| {
            step += 1;
            let dests = dests_of(&items, step, me, nprocs);
            let sched = LightweightSchedule::build(rank, &dests);
            let before = rank.stats();
            items = scatter_append(rank, &sched, &items);
            let after = rank.stats();
            ExchangeStats {
                msgs_sent: after.msgs_sent - before.msgs_sent,
                msgs_received: after.msgs_received - before.msgs_received,
                bytes_sent: after.bytes_sent - before.bytes_sent,
                bytes_received: after.bytes_received - before.bytes_received,
            }
        });
        let fp: f64 = items.iter().map(fp_of).sum();
        (m, fp)
    });
    collect(
        name,
        cfg,
        T::SIZE,
        true,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// The CHARMM executor shape: one regular schedule built by the inspector, then a
/// `gather` + `scatter_add` pair per iteration.
pub fn gather_scatter_steady(cfg: &MicrobenchConfig) -> MicrobenchResult {
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let machine = MachineConfig::new(cfg.ranks).with_backend(cfg.backend);
    let outcome = run(machine, move |rank| {
        let me = rank.rank();
        let (dist, sched, refs) = build_strided_schedule(rank, cfg2.elements);
        let owned: Vec<f64> = dist.local_globals(me).map(|g| g as f64).collect();
        let mut x = DistArray::new(owned, sched.ghost_len());
        let m = instrumented_loop(rank, &cfg2, |rank| {
            let g = gather(rank, &sched, &mut x);
            for &r in &refs {
                x[r] += 1.0;
            }
            let s = scatter_add(rank, &sched, &mut x);
            g.merged(&s)
        });
        let fp: f64 = x.owned().iter().sum();
        (m, fp)
    });
    collect(
        "gather_scatter_steady",
        cfg,
        8,
        false,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// The DSMC MOVE shape: items drift between ranks (routed by their id, so after the first
/// step every rank's items march to the next rank in a ring), a fresh light-weight
/// schedule is built every iteration and `scatter_append` moves the items.
pub fn scatter_append_steady(cfg: &MicrobenchConfig) -> MicrobenchResult {
    scatter_append_core::<u64>(
        "scatter_append_steady",
        cfg,
        |k| k,
        |items, step, _me, nprocs| {
            items
                .iter()
                .map(|&id| ((id + step) % nprocs as u64) as usize)
                .collect()
        },
        |&id| id as f64,
    )
}

/// The CHARMM remap shape: one plan (block → cyclic), then `remap_values` per iteration —
/// the paper remaps every array aligned with a repartitioned template using one plan.
pub fn remap_steady(cfg: &MicrobenchConfig) -> MicrobenchResult {
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let machine = MachineConfig::new(cfg.ranks).with_backend(cfg.backend);
    let outcome = run(machine, move |rank| {
        let n = cfg2.elements;
        let me = rank.rank();
        let old = BlockDist::new(n, rank.nprocs());
        let new = CyclicDist::new(n, rank.nprocs());
        let mut new_table = TranslationTable::from_regular(&new);
        let old_globals: Vec<usize> = old.local_globals(me).collect();
        let old_local: Vec<f64> = old_globals.iter().map(|&g| g as f64).collect();
        let plan = build_remap(rank, &old_globals, &mut new_table);
        let mut fp = 0.0f64;
        let m = instrumented_loop(rank, &cfg2, |rank| {
            let before = rank.stats();
            let moved = remap_values(rank, &plan, &old_local, 0.0);
            fp = moved.iter().sum();
            std::hint::black_box(&moved);
            let after = rank.stats();
            ExchangeStats {
                msgs_sent: after.msgs_sent - before.msgs_sent,
                msgs_received: after.msgs_received - before.msgs_received,
                bytes_sent: after.bytes_sent - before.bytes_sent,
                bytes_received: after.bytes_received - before.bytes_received,
            }
        });
        (m, fp)
    });
    collect(
        "remap_steady",
        cfg,
        8,
        false,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// The post-fusion CHARMM step shape: the same schedule as [`gather_scatter_steady`],
/// but three arrays move per iteration through one fused `gather_multi` and one fused
/// `scatter_add_multi` — one message per pair per direction where three single-array
/// transfers would each pay their own.  Borrow-only in both directions, so the steady
/// state is gated at zero allocations like every other borrowing loop.
pub fn fused_gather_scatter_steady(cfg: &MicrobenchConfig) -> MicrobenchResult {
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let machine = MachineConfig::new(cfg.ranks).with_backend(cfg.backend);
    let outcome = run(machine, move |rank| {
        let me = rank.rank();
        let (dist, sched, refs) = build_strided_schedule(rank, cfg2.elements);
        let mut arrays: [DistArray<f64>; 3] = [1.0, 2.0, 3.0].map(|lane| {
            let owned: Vec<f64> = dist.local_globals(me).map(|g| g as f64 * lane).collect();
            DistArray::new(owned, sched.ghost_len())
        });
        let m = instrumented_loop(rank, &cfg2, |rank| {
            let [x, y, z] = &mut arrays;
            let g = gather_multi(rank, &sched, [x, y, z]);
            for &r in &refs {
                x[r] += 1.0;
                y[r] += 0.5;
                z[r] -= 0.25;
            }
            let s = scatter_add_multi(rank, &sched, [x, y, z]);
            g.merged(&s)
        });
        let fp: f64 = arrays.iter().map(|a| a.owned().iter().sum::<f64>()).sum();
        (m, fp)
    });
    collect(
        "fused_gather_scatter_steady",
        cfg,
        8,
        false,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// The split-phase overlap shape: `gather_start` posts the ghost exchange, a compute
/// block stands in for the force loop that runs while it is in flight, `gather_finish`
/// places the ghosts, and a blocking `scatter_add` closes the iteration.  Pins that the
/// split-phase engine reaches the same zero-allocation steady state as the blocking
/// loops (the staged self scratch and every receive scratch are recycled at finish).
pub fn overlap_gather_steady(cfg: &MicrobenchConfig) -> MicrobenchResult {
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let machine = MachineConfig::new(cfg.ranks).with_backend(cfg.backend);
    let outcome = run(machine, move |rank| {
        let me = rank.rank();
        let (dist, sched, refs) = build_strided_schedule(rank, cfg2.elements);
        let owned: Vec<f64> = dist.local_globals(me).map(|g| g as f64).collect();
        let mut x = DistArray::new(owned, sched.ghost_len());
        let m = instrumented_loop(rank, &cfg2, |rank| {
            let handle = gather_start(rank, &sched, [&x]);
            // The overlapped compute: owned-only work that needs no ghosts.
            rank.charge_compute(refs.len() as f64 * 0.1);
            let g = gather_finish(rank, handle, &sched, [&mut x]);
            for &r in &refs {
                x[r] += 1.0;
            }
            let s = scatter_add(rank, &sched, &mut x);
            g.merged(&s)
        });
        let fp: f64 = x.owned().iter().sum();
        (m, fp)
    });
    collect(
        "overlap_gather_steady",
        cfg,
        8,
        false,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// Run all five steady-state loops at the given configuration.
pub fn all_microbenches(cfg: &MicrobenchConfig) -> Vec<MicrobenchResult> {
    vec![
        gather_scatter_steady(cfg),
        fused_gather_scatter_steady(cfg),
        overlap_gather_steady(cfg),
        scatter_append_steady(cfg),
        remap_steady(cfg),
    ]
}

/// The element-size sweep harness for the gather/scatter shape: same schedule and access
/// pattern as [`gather_scatter_steady`], but `gather` + `scatter` (overwrite, no
/// reduction) so it is generic over any payload element — the sweep instantiates it at
/// 8, 24 and 64 bytes per element to exercise the bulk codec's chunked paths.
fn gather_scatter_elem_steady<T>(
    name: &'static str,
    cfg: &MicrobenchConfig,
    make: fn(usize) -> T,
    fp_of: fn(&T) -> f64,
) -> MicrobenchResult
where
    T: mpsim::Element + Default,
{
    let cfg2 = cfg.clone();
    let start = Instant::now();
    let machine = MachineConfig::new(cfg.ranks).with_backend(cfg.backend);
    let outcome = run(machine, move |rank| {
        let me = rank.rank();
        let (dist, sched, _refs) = build_strided_schedule(rank, cfg2.elements);
        let owned: Vec<T> = dist.local_globals(me).map(make).collect();
        let mut x = DistArray::new(owned, sched.ghost_len());
        let m = instrumented_loop(rank, &cfg2, |rank| {
            let g = gather(rank, &sched, &mut x);
            let s = scatter(rank, &sched, &mut x);
            g.merged(&s)
        });
        let fp: f64 = x.owned().iter().map(fp_of).sum();
        (m, fp)
    });
    collect(
        name,
        cfg,
        T::SIZE,
        false,
        start.elapsed().as_secs_f64() * 1e3,
        outcome,
    )
}

/// The element-size sweep harness for the append shape: [`scatter_append_core`] with items
/// rotating between ranks by position, so per-rank counts stay balanced without
/// inspecting the payload.
fn scatter_append_elem_steady<T>(
    name: &'static str,
    cfg: &MicrobenchConfig,
    make: fn(u64) -> T,
    fp_of: fn(&T) -> f64,
) -> MicrobenchResult
where
    T: mpsim::Element,
{
    scatter_append_core::<T>(
        name,
        cfg,
        make,
        |items, step, me, nprocs| {
            (0..items.len())
                .map(|i| (i + me + step as usize) % nprocs)
                .collect()
        },
        fp_of,
    )
}

/// Machine sizes of the application-shaped rank sweep — the paper's tables sweep
/// processor counts the same way (its iPSC/860 runs go up to 128 nodes).  These loops'
/// message counts grow with P², so the host-thread simulation stops at 64 ranks; the
/// machine itself scales to P = 1024 through the O(log P)-per-rank collective sweep
/// ([`crate::collective`]), which is where the large-P curves live.
pub const RANK_SWEEP_POINTS: &[usize] = &[2, 4, 8, 16, 32, 64];

/// Run the gather/scatter and append shapes at every machine size in
/// [`RANK_SWEEP_POINTS`], holding the global problem size fixed (strong scaling, the
/// paper's convention).  `base.elements` is already global; `base.items_per_rank` is
/// interpreted as the per-rank count *at 8 ranks* (the classic configuration) and
/// rescaled so the global item count stays constant across the sweep.
pub fn rank_sweep(base: &MicrobenchConfig) -> Vec<MicrobenchResult> {
    let global_items = base.items_per_rank * 8;
    assert!(
        RANK_SWEEP_POINTS
            .iter()
            .all(|&p| global_items.is_multiple_of(p)),
        "rank_sweep: items_per_rank must keep the global item count ({global_items}) \
         divisible by every sweep point, or the strong-scaling comparison would \
         silently compare different problem sizes"
    );
    let mut out = Vec::new();
    for &ranks in RANK_SWEEP_POINTS {
        let cfg = MicrobenchConfig {
            ranks,
            items_per_rank: global_items / ranks,
            ..base.clone()
        };
        out.push(gather_scatter_steady(&cfg));
        out.push(scatter_append_steady(&cfg));
    }
    out
}

/// Run the gather/scatter and append shapes with 8-, 24- and 64-byte payload elements
/// (`f64`, `[f64; 3]`, `[f64; 8]` — scalar, coordinate triple, small particle record).
pub fn element_size_sweep(base: &MicrobenchConfig) -> Vec<MicrobenchResult> {
    let sum3 = |v: &[f64; 3]| v.iter().sum::<f64>();
    let sum8 = |v: &[f64; 8]| v.iter().sum::<f64>();
    vec![
        gather_scatter_elem_steady::<f64>("gather_scatter_elem_8B", base, |g| g as f64, |&v| v),
        gather_scatter_elem_steady::<[f64; 3]>(
            "gather_scatter_elem_24B",
            base,
            |g| [g as f64, 1.0, -1.0],
            sum3,
        ),
        gather_scatter_elem_steady::<[f64; 8]>(
            "gather_scatter_elem_64B",
            base,
            |g| [g as f64; 8],
            sum8,
        ),
        scatter_append_elem_steady::<u64>("scatter_append_elem_8B", base, |k| k, |&v| v as f64),
        scatter_append_elem_steady::<[f64; 3]>(
            "scatter_append_elem_24B",
            base,
            |k| [k as f64, 0.5, -0.5],
            sum3,
        ),
        scatter_append_elem_steady::<[f64; 8]>(
            "scatter_append_elem_64B",
            base,
            |k| [k as f64; 8],
            sum8,
        ),
    ]
}

/// Machine sizes of the backend comparison: self-delivery only (P = 1), one pair
/// (P = 2) and the classic configuration (P = 8) — all well under
/// [`mpsim::shared::MAX_SHARED_RANKS`].
pub const BACKEND_SWEEP_POINTS: &[usize] = &[1, 2, 8];

/// Wall-clock factor the shared-memory backend must beat the modeled backend by on the
/// codec-heavy 64-byte POD loop at the largest sweep point.  The fast path eliminates
/// the whole encode/decode step (typed buffers cross the fabric by pointer move), so
/// the bound holds by work elimination even on a single host core.
pub const MIN_SHARED_SPEEDUP: f64 = 2.0;

/// Run the gather/scatter shape (8-byte and 64-byte POD elements) on both backends at
/// every point of [`BACKEND_SWEEP_POINTS`].  Modeled time, wire statistics and
/// fingerprints must come out identical — only `wall_ns_per_iter` may differ, and on
/// the 64-byte loop it must differ by at least [`MIN_SHARED_SPEEDUP`]
/// ([`backend_equivalence_violations`] gates both).
///
/// Wall-clock on a busy CI host is noisy, so the sweep hardens the measurement rather
/// than loosening the gate: a larger problem than the default (the codec work the fast
/// path eliminates then dominates fixed per-message overheads), a longer measured
/// window, and best-of-two windows per row (the *minimum* wall time is the standard
/// noise-robust estimator — scheduling interference only ever inflates a window).  All
/// deterministic fields are identical across the two windows; keeping the faster row
/// whole keeps `wall_ms` consistent with the window it came from.
/// One run of the 64-byte element loop exactly as [`backend_sweep`] configures it —
/// exposed for ad-hoc wall-clock measurement harnesses.
pub fn backend_sweep_point_64b(cfg: &MicrobenchConfig) -> MicrobenchResult {
    gather_scatter_elem_steady::<[f64; 8]>(
        "gather_scatter_elem_64B",
        cfg,
        |g| [g as f64; 8],
        |v| v.iter().sum(),
    )
}

pub fn backend_sweep(base: &MicrobenchConfig) -> Vec<MicrobenchResult> {
    fn best_of_two(mut run: impl FnMut() -> MicrobenchResult) -> MicrobenchResult {
        let a = run();
        let b = run();
        if b.wall_ns_per_iter < a.wall_ns_per_iter {
            b
        } else {
            a
        }
    }
    let mut out = Vec::new();
    for &ranks in BACKEND_SWEEP_POINTS {
        for backend in [ExchangeBackend::Modeled, ExchangeBackend::SharedMem] {
            let cfg = MicrobenchConfig {
                ranks,
                backend,
                measured_iters: base.measured_iters.max(48),
                elements: base.elements.max(16_384),
                ..base.clone()
            };
            out.push(best_of_two(|| gather_scatter_steady(&cfg)));
            out.push(best_of_two(|| {
                gather_scatter_elem_steady::<[f64; 8]>(
                    "gather_scatter_elem_64B",
                    &cfg,
                    |g| [g as f64; 8],
                    |v| v.iter().sum(),
                )
            }));
        }
    }
    out
}

/// The `--check` gate over a [`backend_sweep`]: rows describing the same loop at the
/// same machine size must agree on fingerprint, wire statistics and modeled time across
/// backends (the equivalence contract), and the shared-memory backend must deliver
/// [`MIN_SHARED_SPEEDUP`] on the 64-byte loop at the largest sweep point.
pub fn backend_equivalence_violations(results: &[MicrobenchResult]) -> Vec<String> {
    let mut v = Vec::new();
    for a in results.iter().filter(|r| r.backend == "modeled") {
        let Some(b) = results
            .iter()
            .find(|r| r.backend == "shared" && r.name == a.name && r.ranks == a.ranks)
        else {
            v.push(format!(
                "{} (P={}): modeled row has no shared-backend counterpart",
                a.name, a.ranks
            ));
            continue;
        };
        if a.fingerprint != b.fingerprint {
            v.push(format!(
                "{} (P={}): fingerprints diverge across backends ({} vs {})",
                a.name, a.ranks, a.fingerprint, b.fingerprint
            ));
        }
        if a.exchange != b.exchange {
            v.push(format!(
                "{} (P={}): wire statistics diverge across backends ({:?} vs {:?})",
                a.name, a.ranks, a.exchange, b.exchange
            ));
        }
        // Modeled time gets a few-ULP relative tolerance rather than exact equality:
        // the shared backend delivers messages in real arrival order, so the identical
        // set of cost-model charges can be *summed* in a different order, and f64
        // addition is not associative.  Anything beyond ULP noise is a genuine
        // cost-model divergence.
        let tol = 1e-9 * a.modeled_total_us.abs().max(b.modeled_total_us.abs());
        if (a.modeled_total_us - b.modeled_total_us).abs() > tol {
            v.push(format!(
                "{} (P={}): modeled time diverges across backends ({} vs {} us) — the \
                 backends must charge the identical cost model",
                a.name, a.ranks, a.modeled_total_us, b.modeled_total_us
            ));
        }
    }
    let max_p = results.iter().map(|r| r.ranks).max().unwrap_or(0);
    let wall = |backend: &str| {
        results
            .iter()
            .find(|r| {
                r.backend == backend && r.name == "gather_scatter_elem_64B" && r.ranks == max_p
            })
            .map(|r| r.wall_ns_per_iter)
    };
    if let (Some(modeled), Some(shared)) = (wall("modeled"), wall("shared")) {
        if shared * MIN_SHARED_SPEEDUP > modeled {
            v.push(format!(
                "gather_scatter_elem_64B (P={max_p}): shared backend is only {:.2}x faster \
                 than modeled ({shared:.0} vs {modeled:.0} ns/iter; expected >= \
                 {MIN_SHARED_SPEEDUP}x)",
                modeled / shared
            ));
        }
    }
    v
}

/// The pinned steady-state invariant, as CI enforces it: no loop may allocate a pack
/// buffer after warm-up, and borrow-only loops may not allocate decode scratch either
/// (ownership-taking loops hand their payloads to the application, so their scratch
/// allocations are the data itself, not engine overhead).  Returns one message per
/// violation; empty means the invariant holds.
pub fn steady_state_violations(results: &[MicrobenchResult]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in results {
        if r.pool_steady.allocations != 0 {
            violations.push(format!(
                "{} ({} ranks): {} steady-state pack-buffer allocations (expected 0)",
                r.name, r.ranks, r.pool_steady.allocations
            ));
        }
        if !r.receive_owned && r.pool_steady.decode_allocations != 0 {
            violations.push(format!(
                "{} ({} ranks): {} steady-state decode-scratch allocations (expected 0)",
                r.name, r.ranks, r.pool_steady.decode_allocations
            ));
        }
    }
    violations
}

/// Every microbenchmark section of the report, in document order: section name →
/// result rows.  `exchange_report` renders exactly these sections and the `--check`
/// gate in `exchange_microbench` iterates the same list, so a loop cannot appear in
/// the artifact without also being gated (and vice versa) — there is no separate
/// hard-coded name list to fall out of sync.
pub fn microbench_sections(cfg: &MicrobenchConfig) -> Vec<(&'static str, Vec<MicrobenchResult>)> {
    vec![
        ("benches", all_microbenches(cfg)),
        ("rank_sweep", rank_sweep(cfg)),
        ("element_size_sweep", element_size_sweep(cfg)),
        ("backend_sweep", backend_sweep(cfg)),
    ]
}

/// Render the benchmark results as the `BENCH_exchange.json` document
/// (schema `chaos-bench/exchange/v5`, documented in `BENCHMARKS.md`).  v3 added the
/// `collective_sweep` section ([`crate::collective`]): per-collective modeled time and
/// per-rank message counts over machine sizes up to P = 1024.  v4 added the `delta`
/// section ([`crate::delta::delta_section`]): the schedule-maintenance scenarios, shared
/// with `BENCH_delta.json`.  v5 adds per-row `backend`, `wall_ns_per_iter` and
/// `fingerprint` fields, the `backend_sweep` section (modeled vs shared-memory
/// wall-clock at identical modeled cost), the `preproc` section
/// ([`crate::preproc`]: parallel-inspector worker sweep) and the top-level
/// `host_cores` field the wall-clock numbers must be read against.
pub fn exchange_report(
    sections: &[(&'static str, Vec<MicrobenchResult>)],
    collectives: &[crate::collective::CollectiveResult],
    preproc: Json,
    delta: Json,
) -> Json {
    let mut pairs = vec![
        ("schema", Json::str("chaos-bench/exchange/v5")),
        (
            "generated_by",
            Json::str("cargo run --release -p chaos-bench --bin exchange_microbench -- --json"),
        ),
        (
            "host_cores",
            Json::uint(crate::preproc::host_cores() as u64),
        ),
    ];
    for (name, rows) in sections {
        pairs.push((
            name,
            Json::Arr(rows.iter().map(MicrobenchResult::to_json).collect()),
        ));
    }
    pairs.push((
        "collective_sweep",
        Json::Arr(collectives.iter().map(|c| c.to_json()).collect()),
    ));
    pairs.push(("preproc", preproc));
    pairs.push(("delta", delta));
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MicrobenchConfig {
        MicrobenchConfig {
            ranks: 4,
            warmup_iters: 2,
            measured_iters: 4,
            elements: 256,
            items_per_rank: 64,
            ..MicrobenchConfig::default()
        }
    }

    #[test]
    fn gather_scatter_moves_data_and_reports() {
        let r = gather_scatter_steady(&tiny());
        assert_eq!(r.ranks, 4);
        assert!(r.exchange.msgs_sent > 0);
        assert!(r.exchange.bytes_sent > 0);
        assert!(r.modeled_total_us > 0.0);
        // The measurement window must not allocate, in either direction: both pools are
        // warm and the placement only borrows.
        assert_eq!(r.pool_steady.allocations, 0);
        assert_eq!(r.pool_steady.decode_allocations, 0);
        assert!(r.pool_steady.decode_reuses > 0);
    }

    #[test]
    fn fused_loop_moves_same_bytes_per_array_with_a_third_of_the_messages() {
        let cfg = tiny();
        let single = gather_scatter_steady(&cfg);
        let fused = fused_gather_scatter_steady(&cfg);
        // Three arrays per iteration vs one: 3x the bytes, but the same message count —
        // per array moved, a third of the messages.
        assert_eq!(fused.exchange.bytes_sent, 3 * single.exchange.bytes_sent);
        assert_eq!(fused.exchange.msgs_sent, single.exchange.msgs_sent);
        assert_eq!(fused.msgs_per_iter(), single.msgs_per_iter());
        // And the fused loop stays steady-state clean in both directions.
        assert_eq!(fused.pool_steady.allocations, 0);
        assert_eq!(fused.pool_steady.decode_allocations, 0);
    }

    #[test]
    fn overlap_loop_is_steady_state_clean() {
        let r = overlap_gather_steady(&tiny());
        assert!(r.exchange.msgs_sent > 0);
        assert!(!r.receive_owned);
        assert_eq!(r.pool_steady.allocations, 0);
        assert_eq!(r.pool_steady.decode_allocations, 0);
        assert!(r.pool_steady.decode_reuses > 0);
        assert!(steady_state_violations(std::slice::from_ref(&r)).is_empty());
    }

    #[test]
    fn all_microbenches_cover_the_fused_and_split_phase_loops() {
        // The CI gate runs `steady_state_violations` over `all_microbenches`: the new
        // loops must be in that set or a regression in them would go unnoticed.
        let names: Vec<&str> = all_microbenches(&tiny()).iter().map(|r| r.name).collect();
        for required in [
            "gather_scatter_steady",
            "fused_gather_scatter_steady",
            "overlap_gather_steady",
            "scatter_append_steady",
            "remap_steady",
        ] {
            assert!(
                names.contains(&required),
                "{required} missing from the gate"
            );
        }
    }

    #[test]
    fn element_size_sweep_scales_bytes_with_element_size() {
        let cfg = tiny();
        let results = element_size_sweep(&cfg);
        assert_eq!(results.len(), 6);
        let by_name = |n: &str| {
            results
                .iter()
                .find(|r| r.name == n)
                .unwrap_or_else(|| panic!("missing sweep entry {n}"))
        };
        let gs8 = by_name("gather_scatter_elem_8B");
        let gs24 = by_name("gather_scatter_elem_24B");
        assert_eq!(gs8.elem_bytes, 8);
        assert_eq!(gs24.elem_bytes, 24);
        // Same schedule, 3x the element size: exactly 3x the bytes on the wire.
        assert_eq!(gs24.exchange.bytes_sent, 3 * gs8.exchange.bytes_sent);
        assert_eq!(gs24.exchange.msgs_sent, gs8.exchange.msgs_sent);
        assert!(steady_state_violations(&results).is_empty());
    }

    #[test]
    fn rank_sweep_covers_every_point_and_stays_clean() {
        let cfg = MicrobenchConfig {
            warmup_iters: 2,
            measured_iters: 4,
            elements: 256,
            items_per_rank: 32,
            ..tiny()
        };
        let results = rank_sweep(&cfg);
        assert_eq!(results.len(), 2 * RANK_SWEEP_POINTS.len());
        for (i, &p) in RANK_SWEEP_POINTS.iter().enumerate() {
            assert_eq!(results[2 * i].ranks, p);
            assert_eq!(results[2 * i].name, "gather_scatter_steady");
            assert_eq!(results[2 * i + 1].ranks, p);
            assert_eq!(results[2 * i + 1].name, "scatter_append_steady");
        }
        assert!(steady_state_violations(&results).is_empty());
    }

    #[test]
    fn violations_are_detected_and_owned_receives_are_exempt() {
        let mut r = gather_scatter_steady(&tiny());
        assert!(steady_state_violations(std::slice::from_ref(&r)).is_empty());
        r.pool_steady.decode_allocations = 3;
        assert_eq!(steady_state_violations(std::slice::from_ref(&r)).len(), 1);
        // An ownership-taking loop is allowed decode allocations but not pack ones.
        r.receive_owned = true;
        assert!(steady_state_violations(std::slice::from_ref(&r)).is_empty());
        r.pool_steady.allocations = 1;
        assert_eq!(steady_state_violations(std::slice::from_ref(&r)).len(), 1);
    }

    #[test]
    fn report_document_carries_every_section() {
        let sections = vec![
            (
                "benches",
                vec![gather_scatter_steady(&tiny()), remap_steady(&tiny())],
            ),
            ("rank_sweep", vec![scatter_append_steady(&tiny())]),
            ("element_size_sweep", vec![]),
        ];
        let collectives = crate::collective::collective_sweep_at(&[4]);
        let preproc = Json::obj(vec![("placeholder", Json::Bool(true))]);
        let delta = Json::obj(vec![("placeholder", Json::Bool(true))]);
        let doc = exchange_report(&sections, &collectives, preproc, delta);
        let text = doc.render_pretty();
        assert!(text.contains("\"schema\": \"chaos-bench/exchange/v5\""));
        assert!(text.contains("\"host_cores\""));
        assert!(text.contains("\"delta\""));
        assert!(text.contains("\"preproc\""));
        assert!(text.contains("\"gather_scatter_steady\""));
        assert!(text.contains("\"remap_steady\""));
        assert!(text.contains("\"rank_sweep\""));
        assert!(text.contains("\"element_size_sweep\": []"));
        assert!(text.contains("\"collective_sweep\""));
        assert!(text.contains("\"all_reduce\""));
        assert!(text.contains("\"msgs_per_rank_iter\""));
        assert!(text.contains("\"backend\""));
        assert!(text.contains("\"wall_ns_per_iter\""));
        assert!(text.contains("\"fingerprint\""));
        assert!(text.contains("\"steady_allocations\": 0"));
        assert!(text.contains("\"steady_decode_allocations\": 0"));
        assert!(text.contains("\"receive_owned\": true"));
    }

    #[test]
    fn backends_agree_on_everything_but_wall_clock() {
        // The equivalence half of the backend gate at unit-test scale: fingerprints,
        // wire statistics and modeled time must be identical across backends.  The
        // wall-clock speedup bound is exercised at full scale by `--check` (and its
        // firing logic by the synthetic test below) — a 4-iteration window is too
        // noisy to time.
        let mut results = Vec::new();
        for backend in [ExchangeBackend::Modeled, ExchangeBackend::SharedMem] {
            let cfg = MicrobenchConfig { backend, ..tiny() };
            results.push(gather_scatter_steady(&cfg));
            results.push(fused_gather_scatter_steady(&cfg));
            results.push(overlap_gather_steady(&cfg));
            results.push(scatter_append_steady(&cfg));
        }
        assert!(results.iter().any(|r| r.backend == "shared"));
        let diverged: Vec<String> = backend_equivalence_violations(&results)
            .into_iter()
            .filter(|v| v.contains("diverge"))
            .collect();
        assert!(diverged.is_empty(), "{diverged:?}");
        // Shared steady loops stay allocation-free, exactly like modeled ones.
        assert!(steady_state_violations(&results).is_empty());
    }

    #[test]
    fn backend_gate_fires_on_divergence_and_missing_speedup() {
        // Backends pinned explicitly — under MPSIM_BACKEND=shared the default config
        // would otherwise produce two shared rows and the pairing loop would be empty.
        let cfg = tiny();
        let a = gather_scatter_steady(&MicrobenchConfig {
            backend: ExchangeBackend::Modeled,
            ..cfg.clone()
        });
        let mut b = gather_scatter_steady(&MicrobenchConfig {
            backend: ExchangeBackend::SharedMem,
            ..cfg
        });
        b.fingerprint += 1.0;
        b.modeled_total_us *= 1.5;
        let v = backend_equivalence_violations(&[a.clone(), b.clone()]);
        assert!(
            v.iter().any(|m| m.contains("fingerprints diverge")),
            "{v:?}"
        );
        assert!(
            v.iter().any(|m| m.contains("modeled time diverges")),
            "{v:?}"
        );
        // A 64B pair where shared is NOT 2x faster must trip the speedup bound.
        let mut slow_modeled = a.clone();
        slow_modeled.name = "gather_scatter_elem_64B";
        slow_modeled.wall_ns_per_iter = 1000.0;
        let mut slow_shared = slow_modeled.clone();
        slow_shared.backend = "shared";
        slow_shared.wall_ns_per_iter = 900.0;
        let v = backend_equivalence_violations(&[slow_modeled, slow_shared]);
        assert!(v.iter().any(|m| m.contains("only")), "{v:?}");
        // A missing counterpart is reported rather than silently unpaired.
        let v = backend_equivalence_violations(std::slice::from_ref(&a));
        assert!(v.iter().any(|m| m.contains("no shared-backend")), "{v:?}");
    }

    #[test]
    fn microbench_sections_cover_the_backend_sweep() {
        // `microbench_sections` is what both the artifact and the `--check` gate
        // iterate: the backend sweep must be one of its sections, or wall-clock
        // regressions would escape CI.  (Names only — running the full sweep here
        // would repeat every harness.)
        let tiny_cfg = tiny();
        let names: Vec<&str> = microbench_sections(&MicrobenchConfig {
            measured_iters: 2,
            warmup_iters: 1,
            elements: 128,
            items_per_rank: 32,
            ..tiny_cfg
        })
        .iter()
        .map(|(n, _)| *n)
        .collect();
        for required in [
            "benches",
            "rank_sweep",
            "element_size_sweep",
            "backend_sweep",
        ] {
            assert!(names.contains(&required), "{required} missing");
        }
    }
}
