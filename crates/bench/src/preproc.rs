//! Parallel-inspector preprocessing benchmark (`BENCH_exchange.json`, `preproc`).
//!
//! The paper's Table 2 is about preprocessing cost, and the two dominant sweeps —
//! clearing a stamp across the index hash table and bucketing matching entries into a
//! communication schedule — are linear passes that [`chaos::par`] spreads over worker
//! threads.  This harness measures both sweeps on a large table at each worker count of
//! [`PREPROC_WORKERS`] and pins, unconditionally, that the schedule built with N workers
//! is byte-identical to the 1-worker build.
//!
//! The *speedup* half is host-dependent: worker threads only help when the host has
//! cores to run them on, so [`preproc_scaling_violations`] applies the
//! [`MIN_PREPROC_SPEEDUP`] bound only when [`host_cores`] ≥ 4 — on smaller hosts the
//! artifact still records the timings (against the recorded `host_cores`) but the gate
//! degrades to byte-identity only.

use std::time::Instant;

use chaos::index_hash::{IndexHashTable, Stamp, StampQuery};
use chaos::par::with_workers;
use chaos::prelude::*;
use mpsim::{run, MachineConfig};

use crate::report::Json;

/// Worker counts swept by the preprocessing benchmark.
pub const PREPROC_WORKERS: &[usize] = &[1, 2, 4];

/// Hash-table entries of the benchmark table — large enough that every sweep is far
/// past [`chaos::par::PAR_MIN_ENTRIES`] and chunking is real.
pub const PREPROC_ENTRIES: usize = 131_072;

/// Clear-sweep iterations per worker count.
pub const PREPROC_ITERS: usize = 8;

/// Clear-sweep speedup the 4-worker configuration must reach over 1 worker when the
/// host has at least 4 cores.
pub const MIN_PREPROC_SPEEDUP: f64 = 1.5;

/// The host's available parallelism (the context every wall-clock figure in the report
/// must be read against; recorded as `host_cores`).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One worker count's measurement.
#[derive(Debug, Clone)]
pub struct PreprocResult {
    /// Worker threads the sweeps ran with.
    pub workers: usize,
    /// Hash-table entries swept.
    pub entries: usize,
    /// Host wall-clock per `clear_stamp` call, max over ranks (nanoseconds).  Purely
    /// local work — the number the worker-scaling gate applies to.
    pub clear_ns: f64,
    /// Host wall-clock per `build_schedule_from_table` call, max over ranks
    /// (nanoseconds).  Includes the all-to-all, so it is reported but not gated.
    pub build_ns: f64,
    /// Whether every schedule built at this worker count was byte-identical to the
    /// 1-worker schedule (gated unconditionally).
    pub schedule_identical: bool,
}

impl PreprocResult {
    /// Render as one entry of the `preproc.workers` array.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workers", Json::uint(self.workers as u64)),
            ("entries", Json::uint(self.entries as u64)),
            ("clear_ns", Json::Num(self.clear_ns.round())),
            ("build_ns", Json::Num(self.build_ns.round())),
            ("schedule_identical", Json::Bool(self.schedule_identical)),
        ])
    }

    /// One-line human-readable summary.
    pub fn summary_line(&self) -> String {
        format!(
            "preproc {:>7} entries  {} worker(s)  clear {:>10.0} ns  build {:>10.0} ns  \
             identical: {}",
            self.entries, self.workers, self.clear_ns, self.build_ns, self.schedule_identical
        )
    }
}

/// Measure the stamp-clear and schedule-build sweeps at every worker count in
/// `workers_list` on a table of `entries` entries (2-rank machine, so roughly half the
/// entries are off-processor and the bucketing carries real request lists).
pub fn preproc_workers_sweep(
    entries: usize,
    iters: usize,
    workers_list: &[usize],
) -> Vec<PreprocResult> {
    let workers_list = workers_list.to_vec();
    let out = run(MachineConfig::new(2), move |rank| {
        let me = rank.rank();
        let dist = BlockDist::new(entries, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);
        let mut table = IndexHashTable::new(me, dist.local_size(me));
        let stamp = Stamp::new(0);
        let query = StampQuery::single(stamp);
        let globals: Vec<usize> = (0..entries).map(|i| (i * 7 + 3) % entries).collect();
        table.hash_in_replicated(rank, &ttable, &globals, stamp);
        let reference = build_schedule_from_table(rank, &table, query);

        let mut rows = Vec::new();
        for &w in &workers_list {
            let (clear_ns, build_ns, identical) = with_workers(w, || {
                // One warm-up round so thread-spawn first-touch costs stay out of the
                // measured windows; the rehash between windows restores the stamp bits
                // the clear removed and is never timed.
                table.clear_stamp(stamp);
                table.hash_in_replicated(rank, &ttable, &globals, stamp);
                let mut clear_total = 0u128;
                for _ in 0..iters {
                    let t = Instant::now();
                    table.clear_stamp(stamp);
                    clear_total += t.elapsed().as_nanos();
                    table.hash_in_replicated(rank, &ttable, &globals, stamp);
                }
                let mut build_total = 0u128;
                let mut identical = true;
                for _ in 0..iters {
                    let t = Instant::now();
                    let sched = build_schedule_from_table(rank, &table, query);
                    build_total += t.elapsed().as_nanos();
                    identical &= sched == reference;
                }
                (
                    clear_total as f64 / iters as f64,
                    build_total as f64 / iters as f64,
                    identical,
                )
            });
            rows.push((w, clear_ns, build_ns, identical));
        }
        rows
    });
    // Fold per-rank rows: max wall-clock, AND of identity.
    let nrows = out.results[0].len();
    (0..nrows)
        .map(|i| PreprocResult {
            workers: out.results[0][i].0,
            entries,
            clear_ns: out.results.iter().map(|r| r[i].1).fold(0.0, f64::max),
            build_ns: out.results.iter().map(|r| r[i].2).fold(0.0, f64::max),
            schedule_identical: out.results.iter().all(|r| r[i].3),
        })
        .collect()
}

/// The sweep recorded in `BENCH_exchange.json`.
pub fn preproc_sweep() -> Vec<PreprocResult> {
    preproc_workers_sweep(PREPROC_ENTRIES, PREPROC_ITERS, PREPROC_WORKERS)
}

/// The `preproc` section of the report: the host context plus one entry per worker
/// count.
pub fn preproc_section(results: &[PreprocResult]) -> Json {
    Json::obj(vec![
        ("host_cores", Json::uint(host_cores() as u64)),
        (
            "workers",
            Json::Arr(results.iter().map(PreprocResult::to_json).collect()),
        ),
    ])
}

/// The `--check` gate over a [`preproc_workers_sweep`]: schedules must be byte-identical
/// at every worker count (always), and on hosts with ≥ 4 cores the 4-worker clear sweep
/// must be at least [`MIN_PREPROC_SPEEDUP`] times faster than the 1-worker sweep.
pub fn preproc_scaling_violations(results: &[PreprocResult]) -> Vec<String> {
    let mut v = Vec::new();
    for r in results {
        if !r.schedule_identical {
            v.push(format!(
                "preproc ({} workers): schedule diverged from the 1-worker build",
                r.workers
            ));
        }
    }
    let cores = host_cores();
    if cores >= 4 {
        let at = |w: usize| results.iter().find(|r| r.workers == w).map(|r| r.clear_ns);
        if let (Some(seq), Some(par)) = (at(1), at(4)) {
            if par * MIN_PREPROC_SPEEDUP > seq {
                v.push(format!(
                    "preproc: 4-worker clear sweep is only {:.2}x faster than 1 worker \
                     ({par:.0} vs {seq:.0} ns on a {cores}-core host; expected >= \
                     {MIN_PREPROC_SPEEDUP}x)",
                    seq / par
                ));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reports_every_worker_count_and_identical_schedules() {
        // Small table keeps the unit test fast; the binary runs the full size.  Small
        // also means the sweeps stay sequential internally — identity must hold anyway.
        let results = preproc_workers_sweep(4_096, 2, &[1, 2]);
        assert_eq!(results.len(), 2);
        for (r, &w) in results.iter().zip(&[1usize, 2]) {
            assert_eq!(r.workers, w);
            assert!(r.schedule_identical);
            assert!(r.clear_ns > 0.0);
            assert!(r.build_ns > 0.0);
        }
        assert!(preproc_scaling_violations(&results).is_empty());
    }

    #[test]
    fn gate_fires_on_schedule_divergence() {
        let mut results = preproc_workers_sweep(2_048, 1, &[1]);
        results[0].schedule_identical = false;
        let v = preproc_scaling_violations(&results);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("diverged"));
    }

    #[test]
    fn section_carries_host_context() {
        let results = preproc_workers_sweep(2_048, 1, &[1]);
        let text = preproc_section(&results).render_pretty();
        assert!(text.contains("\"host_cores\""));
        assert!(text.contains("\"clear_ns\""));
        assert!(text.contains("\"schedule_identical\": true"));
    }

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }
}
