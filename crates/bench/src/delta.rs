//! Incremental schedule-maintenance benchmarks (`BENCH_delta.json` and the `delta`
//! section of `BENCH_exchange.json`).
//!
//! Three scenarios quantify the delta subsystem (`chaos::maintained` + `chaos::cache`):
//!
//! * **schedule drift** — a seeded indirection array drifts a few percent per round on a
//!   simulated machine; one maintained schedule is patched forward while a control
//!   schedule is rebuilt from an identical hash table every round.  The artifact records
//!   both upkeep costs per round, pins the results byte-identical, and `--check` gates
//!   the steady-state patch cost under 50% of the rebuild cost;
//! * **drifting DSMC** — the full application comparison: `MoveMode::Patched` with
//!   upkeep-by-patching vs upkeep-by-rebuilding on the drifting-density flow (remaps
//!   included, so full-replacement patches are exercised).  Fingerprints and data-path
//!   wire totals must be identical — the schedule bytes, not the upkeep route, drive the
//!   data path;
//! * **cache lifecycle** — a [`chaos::cache::ScheduleCache`] driven through the
//!   hit / patch / miss / eviction transitions, with the counters recorded.
//!
//! Everything is modeled (no wall-clock) and times are snapped to whole microseconds, so
//! repeated runs are byte-identical — CI regenerates `BENCH_delta.json` twice and fails
//! on any difference, the same gate `BENCH_adapt.json` carries.

use chaos::prelude::*;
use dsmc::{seed_particles, CellGrid, DsmcConfig, FlowConfig, MoveMode, RemapStrategy};
use mpsim::{run, ExchangeStats, MachineConfig};

use crate::report::Json;
use crate::workloads::format_table;

/// Parameters of the chaos-level schedule-drift scenario.
#[derive(Debug, Clone)]
pub struct DriftParams {
    /// Simulated machine size.
    pub ranks: usize,
    /// Global index space (block-distributed).
    pub nglobals: usize,
    /// Indirection-array length per rank.
    pub refs_per_rank: usize,
    /// Drift rounds after the initial build.
    pub rounds: usize,
    /// Entries replaced per round (the drift fraction is this over `refs_per_rank`).
    pub drift_per_round: usize,
    /// Seed of the per-rank reference streams.
    pub seed: u64,
}

impl DriftParams {
    /// The scale recorded in `BENCH_delta.json`: 5% drift per round, the regime the
    /// paper's incremental schedules (Figure 6) are built for.
    pub fn default_drift(ranks: usize) -> Self {
        DriftParams {
            ranks,
            nglobals: 16_384,
            refs_per_rank: 2_048,
            rounds: 12,
            drift_per_round: 102,
            seed: 1994,
        }
    }
}

/// One round of the schedule-drift scenario (costs are max over ranks, microseconds).
#[derive(Debug, Clone)]
pub struct DriftRound {
    /// Round index (0 is the initial build).
    pub round: usize,
    /// Modeled cost of bringing the maintained schedule up to date (build on round 0,
    /// patch afterwards).
    pub patch_us: f64,
    /// Modeled cost of the from-scratch rebuild of the control schedule.
    pub rebuild_us: f64,
    /// Edit records shipped to owners this round, summed over ranks.
    pub edits: usize,
    /// Off-processor elements the schedule fetches, summed over ranks.
    pub total_fetch: usize,
}

/// Outcome of the schedule-drift scenario.
#[derive(Debug, Clone)]
pub struct DriftEntry {
    /// Parameters the scenario ran with.
    pub params: DriftParams,
    /// Host wall-clock of the whole scenario, milliseconds.  Reported in the
    /// human-readable output but deliberately kept out of the JSON sections —
    /// `BENCH_delta.json` is gated on two runs being byte-identical, and wall-clock
    /// never is.
    pub wall_ms: f64,
    /// Whether every round's patched schedule was byte-identical to the rebuild on every
    /// rank — the correctness pin behind reusing patched schedules anywhere a built one
    /// is accepted.
    pub byte_identical: bool,
    /// Per-round costs (round 0 is the initial build).
    pub per_round: Vec<DriftRound>,
    /// Steady-state (rounds 1..) patch cost, summed, max over ranks.
    pub steady_patch_us: f64,
    /// Steady-state (rounds 1..) rebuild cost, summed, max over ranks.
    pub steady_rebuild_us: f64,
}

fn lcg(x: &mut u64) -> u64 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *x >> 33
}

/// Run the schedule-drift scenario: patch one maintained schedule forward while
/// rebuilding a control schedule from a hash table kept in lockstep, comparing bytes and
/// modeled upkeep cost every round.
pub fn schedule_drift(params: &DriftParams) -> DriftEntry {
    let start = std::time::Instant::now();
    let p = params.clone();
    let out = run(MachineConfig::new(p.ranks), move |rank| {
        let me = rank.rank();
        let nprocs = rank.nprocs();
        let dist = BlockDist::new(p.nglobals, nprocs);
        let ttable = TranslationTable::from_regular(&dist);
        // Two hash tables with identical histories: ghost slots and translations evolve
        // in lockstep, so the schedules they yield are comparable byte for byte.
        let mut patch_hash = IndexHashTable::new(me, dist.local_size(me));
        let mut build_hash = IndexHashTable::new(me, dist.local_size(me));
        let stamp = Stamp::new(0);
        let query = StampQuery::single(stamp);

        let mut rng = p.seed.wrapping_add(me as u64 * 0x9E37_79B9);
        let mut refs: Vec<usize> = (0..p.refs_per_rank)
            .map(|_| lcg(&mut rng) as usize % p.nglobals)
            .collect();

        let mut ms: Option<MaintainedSchedule> = None;
        let mut rounds = Vec::with_capacity(p.rounds + 1);
        let mut identical = true;
        for round in 0..=p.rounds {
            if round > 0 {
                for _ in 0..p.drift_per_round {
                    let at = lcg(&mut rng) as usize % refs.len();
                    refs[at] = lcg(&mut rng) as usize % p.nglobals;
                }
            }
            // Rehash the drifted array into both tables (identical cost on both sides —
            // the upkeep windows below exclude it deliberately).
            patch_hash.clear_stamp(stamp);
            patch_hash.hash_in_replicated(rank, &ttable, &refs, stamp);
            build_hash.clear_stamp(stamp);
            build_hash.hash_in_replicated(rank, &ttable, &refs, stamp);

            let t0 = rank.modeled();
            let edits = match ms.as_mut() {
                None => {
                    ms = Some(build_maintained(rank, &patch_hash, query));
                    0
                }
                Some(m) => patch_schedule(rank, &patch_hash, m).edits_sent,
            };
            let patch_us = rank.modeled().since(&t0).total_us();

            let t0 = rank.modeled();
            let rebuilt = build_schedule_from_table(rank, &build_hash, query);
            let rebuild_us = rank.modeled().since(&t0).total_us();

            let maintained = ms.as_ref().expect("schedule exists").schedule();
            identical &= *maintained == rebuilt;
            rounds.push((round, patch_us, rebuild_us, edits, rebuilt.total_fetch()));
        }
        (identical, rounds)
    });

    let byte_identical = out.results.iter().all(|(ok, _)| *ok);
    let nrounds = out.results[0].1.len();
    let per_round: Vec<DriftRound> = (0..nrounds)
        .map(|i| DriftRound {
            round: i,
            patch_us: out.results.iter().map(|(_, r)| r[i].1).fold(0.0, f64::max),
            rebuild_us: out.results.iter().map(|(_, r)| r[i].2).fold(0.0, f64::max),
            edits: out.results.iter().map(|(_, r)| r[i].3).sum(),
            total_fetch: out.results.iter().map(|(_, r)| r[i].4).sum(),
        })
        .collect();
    let steady = &per_round[1..];
    DriftEntry {
        params: params.clone(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        byte_identical,
        steady_patch_us: steady.iter().map(|r| r.patch_us).sum(),
        steady_rebuild_us: steady.iter().map(|r| r.rebuild_us).sum(),
        per_round,
    }
}

/// Parameters of the drifting-DSMC comparison.
#[derive(Debug, Clone)]
pub struct DsmcDeltaParams {
    /// Simulated machine size.
    pub ranks: usize,
    /// 2-D cell grid (nx, ny).
    pub grid: (usize, usize),
    /// Total molecules.
    pub nparticles: usize,
    /// Time steps.
    pub nsteps: usize,
    /// Chain-remap cadence (remaps force full-replacement patches through the epoch
    /// path); `0` disables remapping.
    pub remap_interval: usize,
    /// Seed shared by flow and collisions.
    pub seed: u64,
}

impl DsmcDeltaParams {
    /// The scale recorded in `BENCH_delta.json`.
    pub fn default_dsmc(ranks: usize) -> Self {
        DsmcDeltaParams {
            ranks,
            grid: (32, 8),
            nparticles: 12_000,
            nsteps: 60,
            remap_interval: 20,
            seed: 1994,
        }
    }
}

/// Outcome of the drifting-DSMC comparison (patching vs rebuilding the maintained MOVE
/// schedule, identical data path).
#[derive(Debug, Clone)]
pub struct DsmcDeltaEntry {
    /// Parameters the scenario ran with.
    pub params: DsmcDeltaParams,
    /// Host wall-clock of both runs together, milliseconds.  Human-readable output
    /// only — excluded from the byte-identity-gated JSON like [`DriftEntry::wall_ms`].
    pub wall_ms: f64,
    /// Whether both runs produced identical simulation fingerprints.
    pub fingerprints_match: bool,
    /// Whether both runs put identical MOVE data-path traffic on the wire, rank by rank.
    pub data_exchange_equal: bool,
    /// Schedule-upkeep cost of the patching run (max over ranks, microseconds).
    pub patch_upkeep_us: f64,
    /// Schedule-upkeep cost of the rebuilding run (max over ranks, microseconds).
    pub rebuild_upkeep_us: f64,
    /// Builds performed by the patching run (per rank — replicated).
    pub patch_builds: usize,
    /// Patches applied by the patching run (per rank — replicated).
    pub patch_patches: usize,
    /// Edit records shipped across all patches, summed over ranks.
    pub patch_edits: usize,
    /// The patching run's MOVE data-path wire totals, summed over ranks.
    pub data_exchange: ExchangeStats,
}

/// Run the drifting-density DSMC flow twice — upkeep by patching and upkeep by
/// rebuilding — and compare physics, wire traffic and upkeep cost.
pub fn dsmc_drift(params: &DsmcDeltaParams) -> DsmcDeltaEntry {
    let start = std::time::Instant::now();
    let run_mode = |rebuild_every_step: bool| {
        let p = params.clone();
        let grid = CellGrid::new_2d(p.grid.0, p.grid.1);
        let flow = FlowConfig::directional(p.seed);
        let config = DsmcConfig {
            nsteps: p.nsteps,
            dt: 0.5,
            move_mode: MoveMode::Patched { rebuild_every_step },
            remap: if p.remap_interval == 0 {
                RemapStrategy::Static
            } else {
                RemapStrategy::Chain
            },
            remap_interval: p.remap_interval,
            policy: None,
            monitor_group: None,
            seed: p.seed,
        };
        run(MachineConfig::new(p.ranks), move |rank| {
            let particles = seed_particles(&grid, p.nparticles, &flow);
            dsmc::parallel::run_parallel(rank, &grid, &particles, &config)
        })
        .results
    };
    let patched = run_mode(false);
    let rebuilt = run_mode(true);

    let fingerprint = |results: &[dsmc::parallel::DsmcStats]| {
        let mut all: Vec<(usize, Vec<u64>)> =
            results.iter().flat_map(|s| s.fingerprint.clone()).collect();
        all.sort_unstable();
        all
    };
    let upkeep_us = |results: &[dsmc::parallel::DsmcStats]| {
        results
            .iter()
            .map(|s| s.phases.move_upkeep.total_us())
            .fold(0.0, f64::max)
    };
    DsmcDeltaEntry {
        params: params.clone(),
        wall_ms: start.elapsed().as_secs_f64() * 1e3,
        fingerprints_match: fingerprint(&patched) == fingerprint(&rebuilt),
        data_exchange_equal: patched
            .iter()
            .zip(&rebuilt)
            .all(|(a, b)| a.move_data_exchange == b.move_data_exchange),
        patch_upkeep_us: upkeep_us(&patched),
        rebuild_upkeep_us: upkeep_us(&rebuilt),
        patch_builds: patched[0].schedule_upkeep.builds,
        patch_patches: patched[0].schedule_upkeep.patches,
        patch_edits: patched.iter().map(|s| s.schedule_upkeep.edits).sum(),
        data_exchange: patched.iter().fold(ExchangeStats::default(), |acc, s| {
            acc.merged(&s.move_data_exchange)
        }),
    }
}

/// Drive a [`ScheduleCache`] through every lifecycle transition — miss, hit, patch,
/// eviction — and return the final counters (replicated across ranks).
pub fn cache_lifecycle(ranks: usize, rounds: usize) -> CacheStats {
    let out = run(MachineConfig::new(ranks), move |rank| {
        let me = rank.rank();
        let nprocs = rank.nprocs();
        let nglobals = 64 * nprocs;
        let dist = BlockDist::new(nglobals, nprocs);
        let ttable = TranslationTable::from_regular(&dist);
        let mut hash = IndexHashTable::new(me, dist.local_size(me));
        let (sa, sb) = (Stamp::new(0), Stamp::new(1));
        // Stamp B is hashed once and never touched again: its schedule must keep hitting.
        let fixed: Vec<usize> = (0..nglobals).step_by(7).collect();
        hash.hash_in_replicated(rank, &ttable, &fixed, sb);
        let mut cache = ScheduleCache::new(2);
        let mut rng = 7u64.wrapping_add(me as u64);
        for round in 0..rounds {
            // Stamp A drifts every round: its schedule patches forward.
            let drifting: Vec<usize> = (0..64).map(|_| lcg(&mut rng) as usize % nglobals).collect();
            hash.clear_stamp(sa);
            hash.hash_in_replicated(rank, &ttable, &drifting, sa);
            cache.schedule(rank, &hash, StampQuery::single(sa));
            cache.schedule(rank, &hash, StampQuery::single(sb));
            if round == rounds - 1 {
                // A third distinct query against a capacity-2 cache: the LRU entry is
                // evicted to make room.
                cache.schedule(rank, &hash, StampQuery::any_of(&[sa, sb]));
            }
        }
        cache.stats()
    });
    let stats = out.results[0];
    debug_assert!(
        out.results.iter().all(|s| *s == stats),
        "cache decisions must be replicated"
    );
    stats
}

/// See `chaos_bench::adapt::stable_us`: modeled communication time jitters in its last
/// bits with host scheduling, so recorded times are snapped to whole microseconds to
/// keep the artifact byte-stable.
fn stable_us(x: f64) -> Json {
    Json::Int(x.round() as i64)
}

fn drift_json(e: &DriftEntry) -> Json {
    Json::obj(vec![
        ("ranks", Json::uint(e.params.ranks as u64)),
        ("nglobals", Json::uint(e.params.nglobals as u64)),
        ("refs_per_rank", Json::uint(e.params.refs_per_rank as u64)),
        (
            "drift_per_round",
            Json::uint(e.params.drift_per_round as u64),
        ),
        ("byte_identical", Json::Bool(e.byte_identical)),
        ("steady_patch_us", stable_us(e.steady_patch_us)),
        ("steady_rebuild_us", stable_us(e.steady_rebuild_us)),
        (
            "per_round",
            Json::Arr(
                e.per_round
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("round", Json::uint(r.round as u64)),
                            ("patch_us", stable_us(r.patch_us)),
                            ("rebuild_us", stable_us(r.rebuild_us)),
                            ("edits", Json::uint(r.edits as u64)),
                            ("total_fetch", Json::uint(r.total_fetch as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn dsmc_json(e: &DsmcDeltaEntry) -> Json {
    Json::obj(vec![
        ("ranks", Json::uint(e.params.ranks as u64)),
        ("nparticles", Json::uint(e.params.nparticles as u64)),
        ("nsteps", Json::uint(e.params.nsteps as u64)),
        ("remap_interval", Json::uint(e.params.remap_interval as u64)),
        ("fingerprints_match", Json::Bool(e.fingerprints_match)),
        ("data_exchange_equal", Json::Bool(e.data_exchange_equal)),
        ("patch_upkeep_us", stable_us(e.patch_upkeep_us)),
        ("rebuild_upkeep_us", stable_us(e.rebuild_upkeep_us)),
        ("patch_builds", Json::uint(e.patch_builds as u64)),
        ("patch_patches", Json::uint(e.patch_patches as u64)),
        ("patch_edits", Json::uint(e.patch_edits as u64)),
        ("data_msgs_sent", Json::uint(e.data_exchange.msgs_sent)),
        ("data_bytes_sent", Json::uint(e.data_exchange.bytes_sent)),
    ])
}

fn cache_json(s: &CacheStats) -> Json {
    Json::obj(vec![
        ("hits", Json::uint(s.hits)),
        ("misses", Json::uint(s.misses)),
        ("patches", Json::uint(s.patches)),
        ("evictions", Json::uint(s.evictions)),
    ])
}

/// The `delta` section shared by `BENCH_delta.json` and `BENCH_exchange.json`.
pub fn delta_section(drift: &DriftEntry, dsmc: &DsmcDeltaEntry, cache: &CacheStats) -> Json {
    Json::obj(vec![
        ("schedule_drift", drift_json(drift)),
        ("dsmc_drift", dsmc_json(dsmc)),
        ("cache_lifecycle", cache_json(cache)),
    ])
}

/// Build the full `BENCH_delta.json` document (schema `chaos-bench/delta/v1`).  Contains
/// no wall-clock measurement and snaps modeled times to whole microseconds, so repeated
/// runs are byte-identical — the property CI gates on.
pub fn delta_report(drift: &DriftEntry, dsmc: &DsmcDeltaEntry, cache: &CacheStats) -> Json {
    Json::obj(vec![
        ("schema", Json::str("chaos-bench/delta/v1")),
        (
            "generated_by",
            Json::str("cargo run --release -p chaos-bench --bin delta_scenarios -- --json"),
        ),
        ("delta", delta_section(drift, dsmc, cache)),
    ])
}

/// The `--check` gate over the delta scenarios: byte-identity, physics/wire equivalence,
/// and steady-state patch cost under 50% of the rebuild cost in both scenarios.
pub fn delta_violations(drift: &DriftEntry, dsmc: &DsmcDeltaEntry) -> Vec<String> {
    let mut v = Vec::new();
    if !drift.byte_identical {
        v.push("schedule drift: patched schedule diverged from the rebuild".to_string());
    }
    if drift.steady_patch_us >= 0.5 * drift.steady_rebuild_us {
        v.push(format!(
            "schedule drift: steady-state patch cost {:.0} us is not under 50% of the \
             rebuild cost {:.0} us",
            drift.steady_patch_us, drift.steady_rebuild_us
        ));
    }
    if !dsmc.fingerprints_match {
        v.push("dsmc drift: patching changed the simulation fingerprint".to_string());
    }
    if !dsmc.data_exchange_equal {
        v.push("dsmc drift: patching changed the data-path wire traffic".to_string());
    }
    if dsmc.patch_upkeep_us >= 0.5 * dsmc.rebuild_upkeep_us {
        v.push(format!(
            "dsmc drift: steady-state upkeep by patching ({:.0} us) is not under 50% of \
             upkeep by rebuilding ({:.0} us)",
            dsmc.patch_upkeep_us, dsmc.rebuild_upkeep_us
        ));
    }
    v
}

/// Render the drift rounds as an aligned human-readable table.
pub fn format_drift(e: &DriftEntry) -> String {
    let headers = ["Round", "Patch (us)", "Rebuild (us)", "Edits", "Fetch"]
        .map(String::from)
        .to_vec();
    let rows: Vec<Vec<String>> = e
        .per_round
        .iter()
        .map(|r| {
            vec![
                if r.round == 0 {
                    "0 (build)".to_string()
                } else {
                    r.round.to_string()
                },
                format!("{:.0}", r.patch_us),
                format!("{:.0}", r.rebuild_us),
                r.edits.to_string(),
                r.total_fetch.to_string(),
            ]
        })
        .collect();
    format_table(
        &format!(
            "Schedule drift (P = {}, {} refs/rank, {} replaced/round, byte-identical: {}, \
             wall {:.1} ms)",
            e.params.ranks,
            e.params.refs_per_rank,
            e.params.drift_per_round,
            e.byte_identical,
            e.wall_ms
        ),
        &headers,
        &rows,
    )
}

/// Render the DSMC comparison as an aligned human-readable table.
pub fn format_dsmc(e: &DsmcDeltaEntry) -> String {
    let headers = ["Upkeep", "Cost (us)", "Builds", "Patches", "Edits"]
        .map(String::from)
        .to_vec();
    let rows = vec![
        vec![
            "patch".to_string(),
            format!("{:.0}", e.patch_upkeep_us),
            e.patch_builds.to_string(),
            e.patch_patches.to_string(),
            e.patch_edits.to_string(),
        ],
        vec![
            "rebuild".to_string(),
            format!("{:.0}", e.rebuild_upkeep_us),
            (e.patch_builds + e.patch_patches).to_string(),
            "0".to_string(),
            "-".to_string(),
        ],
    ];
    format_table(
        &format!(
            "Drifting DSMC (P = {}, {} molecules, {} steps; fingerprints match: {}, \
             wire traffic equal: {}, wall {:.1} ms)",
            e.params.ranks,
            e.params.nparticles,
            e.params.nsteps,
            e.fingerprints_match,
            e.data_exchange_equal,
            e.wall_ms
        ),
        &headers,
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_drift() -> DriftParams {
        DriftParams {
            ranks: 4,
            nglobals: 1_024,
            refs_per_rank: 256,
            rounds: 6,
            drift_per_round: 13,
            seed: 42,
        }
    }

    #[test]
    fn drift_scenario_pins_byte_identity_and_patch_advantage() {
        let e = schedule_drift(&small_drift());
        assert!(e.byte_identical);
        assert_eq!(e.per_round.len(), 7);
        assert!(e.per_round[0].edits == 0, "round 0 is a build, not a patch");
        assert!(e.per_round[1..].iter().any(|r| r.edits > 0));
        assert!(
            e.steady_patch_us < 0.5 * e.steady_rebuild_us,
            "patch {:.0} us vs rebuild {:.0} us",
            e.steady_patch_us,
            e.steady_rebuild_us
        );
    }

    #[test]
    fn dsmc_scenario_pins_equivalence_at_test_scale() {
        // P = 16 rather than 4: the patch path's log-depth routing needs log2(P) well
        // under P - 1 before the 50% latency advantage over the dense rebuild shows
        // (at P = 8 the floor is 3/7 and payload overhead eats the rest of the margin).
        let e = dsmc_drift(&DsmcDeltaParams {
            ranks: 16,
            grid: (16, 8),
            nparticles: 2_000,
            nsteps: 20,
            remap_interval: 8,
            seed: 42,
        });
        assert!(e.fingerprints_match);
        assert!(e.data_exchange_equal);
        assert_eq!(e.patch_builds, 1);
        assert_eq!(e.patch_patches, 19);
        assert!(
            e.patch_upkeep_us < 0.5 * e.rebuild_upkeep_us,
            "patch upkeep {:.0} us vs rebuild upkeep {:.0} us",
            e.patch_upkeep_us,
            e.rebuild_upkeep_us
        );
        assert!(e.data_exchange.msgs_sent > 0);
    }

    #[test]
    fn cache_lifecycle_touches_every_transition() {
        let stats = cache_lifecycle(4, 5);
        // Round 0: two misses.  Rounds 1..: stamp A patches, stamp B hits.  The final
        // round's third query misses and evicts from the capacity-2 cache.
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.patches, 4);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn delta_report_is_deterministic() {
        let drift = schedule_drift(&small_drift());
        let dsmc = dsmc_drift(&DsmcDeltaParams {
            ranks: 2,
            grid: (8, 8),
            nparticles: 600,
            nsteps: 8,
            remap_interval: 0,
            seed: 7,
        });
        let cache = cache_lifecycle(2, 3);
        let a = delta_report(&drift, &dsmc, &cache);
        let drift2 = schedule_drift(&small_drift());
        let cache2 = cache_lifecycle(2, 3);
        let dsmc2 = dsmc_drift(&DsmcDeltaParams {
            ranks: 2,
            grid: (8, 8),
            nparticles: 600,
            nsteps: 8,
            remap_interval: 0,
            seed: 7,
        });
        let b = delta_report(&drift2, &dsmc2, &cache2);
        assert_eq!(a.render_pretty(), b.render_pretty());
    }

    #[test]
    fn wall_clock_is_recorded_but_never_enters_the_gated_json() {
        // The byte-identity gate over BENCH_delta.json only works because nothing
        // host-dependent is rendered; wall_ms lives on the structs (and in the human
        // tables) but must stay out of the document.
        let drift = schedule_drift(&small_drift());
        assert!(drift.wall_ms > 0.0);
        assert!(format_drift(&drift).contains("wall"));
        let dsmc = dsmc_drift(&DsmcDeltaParams {
            ranks: 2,
            grid: (8, 8),
            nparticles: 600,
            nsteps: 8,
            remap_interval: 0,
            seed: 7,
        });
        assert!(dsmc.wall_ms > 0.0);
        assert!(format_dsmc(&dsmc).contains("wall"));
        let cache = cache_lifecycle(2, 3);
        let text = delta_report(&drift, &dsmc, &cache).render_pretty();
        assert!(!text.contains("wall"), "wall-clock leaked into gated JSON");
    }

    #[test]
    fn violations_fire_on_broken_invariants() {
        let mut drift = schedule_drift(&small_drift());
        // P = 16 so the patch-cost gate holds on the clean baseline (see the DSMC test).
        let dsmc = dsmc_drift(&DsmcDeltaParams {
            ranks: 16,
            grid: (16, 8),
            nparticles: 1_200,
            nsteps: 10,
            remap_interval: 0,
            seed: 7,
        });
        assert!(delta_violations(&drift, &dsmc).is_empty());
        drift.byte_identical = false;
        drift.steady_patch_us = drift.steady_rebuild_us;
        let v = delta_violations(&drift, &dsmc);
        assert_eq!(v.len(), 2);
    }
}
