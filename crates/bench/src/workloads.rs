//! Shared workload construction and table formatting for the benchmark harnesses.

use charmm::system::SystemConfig;

/// A CHARMM-like system scaled down from the paper's 14 026-atom benchmark but with the
/// same structure (dense bonded cluster + solvent); used by the quick table runs.
pub fn charmm_medium() -> SystemConfig {
    SystemConfig {
        protein_atoms: 700,
        water_molecules: 900,
        box_size: 28.0,
        cutoff: 7.0,
        seed: 1994,
    }
}

/// The paper's full-size CHARMM benchmark (MbCO + 3 830 waters, 14 026 atoms).
pub fn charmm_paper() -> SystemConfig {
    SystemConfig::paper_benchmark()
}

/// Format a table: a title, column headers and rows of strings, padded for alignment.
pub fn format_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let sep_len: usize = widths.iter().sum::<usize>() + 3 * widths.len();
    out.push_str(&"=".repeat(sep_len.max(title.len())));
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:>width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(8) + 2
                )
            })
            .collect::<Vec<_>>()
            .join(" ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(sep_len.max(title.len())));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a modeled time (microseconds) as seconds with two decimals, the way the paper
/// prints its tables.
pub fn secs(us: f64) -> String {
    format!("{:.2}", us / 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            "Demo",
            &["Procs".to_string(), "Time".to_string()],
            &[
                vec!["4".to_string(), "1.25".to_string()],
                vec!["128".to_string(), "0.50".to_string()],
            ],
        );
        assert!(t.contains("Demo"));
        assert!(t.contains("Procs"));
        assert!(t.lines().count() >= 5);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(secs(1_500_000.0), "1.50");
        assert_eq!(secs(0.0), "0.00");
    }

    #[test]
    fn medium_system_is_smaller_than_paper() {
        assert!(charmm_medium().total_atoms() < charmm_paper().total_atoms());
    }
}
