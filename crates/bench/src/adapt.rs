//! Adaptive-remapping benchmark scenarios (`BENCH_adapt.json`).
//!
//! The paper remaps DSMC on a fixed cadence; the `chaos::adapt` controller remaps from
//! the *measured* load instead.  These scenarios quantify the difference on the workload
//! where it matters — a drifting-density DSMC flow whose load distribution degrades over
//! time — and record per-step load-balance-index trajectories so the artifact shows *how*
//! each policy tracks the drift, not just where it ends up:
//!
//! * **drift ramp** — one machine size, every policy side by side over a long ramp;
//! * **imbalance sweep** — the same comparison over machine sizes P = 2–16.
//!
//! Everything recorded is modeled (deterministic) — no wall-clock — so two runs of the
//! generator produce byte-identical artifacts; CI regenerates the file twice and fails if
//! they differ, which pins the controller's decisions (and the whole simulation behind
//! them) as reproducible.  Schema documented in `BENCHMARKS.md`.

use chaos::adapt::RemapPolicy;
use dsmc::{seed_particles, CellGrid, DsmcConfig, FlowConfig, MoveMode, RemapStrategy};
use mpsim::{run, MachineConfig};

use crate::report::Json;
use crate::workloads::format_table;

/// How many trailing steps the end-of-run load-balance figure averages over (a single
/// step's index is noisy; five smooth it without hiding the trend).
pub const FINAL_LB_WINDOW: usize = 5;

/// Parameters of one drifting-density DSMC scenario run.
#[derive(Debug, Clone)]
pub struct RampParams {
    /// Simulated machine size.
    pub ranks: usize,
    /// 2-D cell grid (nx, ny).
    pub grid: (usize, usize),
    /// Total molecules.
    pub nparticles: usize,
    /// Time steps.
    pub nsteps: usize,
    /// Cadence of the `interval` baseline policy.
    pub interval: usize,
    /// Monitoring topology: `None` gathers every sample on every rank (flat), `Some(g)`
    /// reduces to size-`g` group leaders (hierarchical, O(log P) messages per step).
    /// Remap decisions are identical either way (the recorded lb samples can differ in
    /// their last ulps because monitoring pack/unpack compute shifts the measurement
    /// base); the committed artifact records flat.
    pub monitor_group: Option<usize>,
    /// Seed shared by flow and collisions.
    pub seed: u64,
}

impl RampParams {
    /// The scale recorded in `BENCH_adapt.json`: long enough for the directional flow to
    /// pile molecules downstream and ramp the static run's imbalance.
    pub fn default_ramp(ranks: usize) -> Self {
        RampParams {
            ranks,
            grid: (32, 8),
            nparticles: 12_000,
            nsteps: 60,
            interval: 6,
            monitor_group: None,
            seed: 1994,
        }
    }
}

/// One policy's measured outcome on a scenario.
#[derive(Debug, Clone)]
pub struct AdaptEntry {
    /// Stable policy identifier: `static`, `interval`, `threshold` or `cost_benefit`.
    pub policy: &'static str,
    /// Simulated machine size.
    pub ranks: usize,
    /// Time steps simulated.
    pub nsteps: usize,
    /// Remapping events performed.
    pub remaps: usize,
    /// Mean load-balance index over the last [`FINAL_LB_WINDOW`] steps.
    pub final_lb: f64,
    /// Mean load-balance index over the whole run.
    pub mean_lb: f64,
    /// Modeled execution time: max over ranks of the summed phase times (microseconds).
    pub max_total_us: f64,
    /// The per-step load-balance index measured by the controller.
    pub lb_trajectory: Vec<f64>,
    /// `(step, machine-wide modeled cost in us)` of every remap performed.
    pub remap_costs: Vec<(usize, f64)>,
}

/// The four policies every scenario compares.  `static` never remaps but still samples
/// (interval 0 is the controller's "measure only" setting); `interval` is the paper's
/// fixed cadence; `threshold` and `cost_benefit` are the feedback policies.
pub fn policy_matrix(params: &RampParams) -> Vec<(&'static str, RemapPolicy)> {
    vec![
        ("static", RemapPolicy::Interval { every: 0 }),
        (
            "interval",
            RemapPolicy::Interval {
                every: params.interval,
            },
        ),
        (
            "threshold",
            RemapPolicy::Threshold {
                lb_index: 1.2,
                hysteresis: 0.05,
                patience: 2 * params.interval,
            },
        ),
        (
            "cost_benefit",
            RemapPolicy::CostBenefit {
                assumed_cost_us: 2_000.0,
            },
        ),
    ]
}

/// Run one policy on the drifting-density scenario.
pub fn run_policy(
    params: &RampParams,
    policy_name: &'static str,
    policy: RemapPolicy,
) -> AdaptEntry {
    let grid = CellGrid::new_2d(params.grid.0, params.grid.1);
    let flow = FlowConfig::directional(params.seed);
    let nparticles = params.nparticles;
    let config = DsmcConfig {
        nsteps: params.nsteps,
        dt: 0.5,
        move_mode: MoveMode::Lightweight,
        remap: RemapStrategy::Chain,
        remap_interval: params.interval,
        policy: Some(policy),
        monitor_group: params.monitor_group,
        seed: params.seed,
    };
    let out = run(MachineConfig::new(params.ranks), move |rank| {
        let particles = seed_particles(&grid, nparticles, &flow);
        dsmc::parallel::run_parallel(rank, &grid, &particles, &config)
    });
    let traj = out.results[0].lb_trajectory.clone();
    debug_assert!(
        out.results.iter().all(|s| s.lb_trajectory == traj),
        "trajectory must be replicated across ranks"
    );
    let mean = |xs: &[f64]| -> f64 {
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let tail = &traj[traj.len().saturating_sub(FINAL_LB_WINDOW)..];
    AdaptEntry {
        policy: policy_name,
        ranks: params.ranks,
        nsteps: params.nsteps,
        remaps: out.results[0].remaps,
        final_lb: mean(tail),
        mean_lb: mean(&traj),
        max_total_us: out
            .results
            .iter()
            .map(|s| s.phases.total().total_us())
            .fold(0.0, f64::max),
        lb_trajectory: traj,
        remap_costs: out.results[0].remap_costs.clone(),
    }
}

/// The drift-ramp scenario: every policy at one machine size.
pub fn drift_ramp(params: &RampParams) -> Vec<AdaptEntry> {
    policy_matrix(params)
        .into_iter()
        .map(|(name, policy)| run_policy(params, name, policy))
        .collect()
}

/// The imbalance sweep: every policy at every machine size in `ranks`.
pub fn imbalance_sweep(ranks: &[usize]) -> Vec<AdaptEntry> {
    ranks
        .iter()
        .flat_map(|&p| {
            let mut params = RampParams::default_ramp(p);
            params.nsteps = 40;
            drift_ramp(&params)
        })
        .collect()
}

/// Render entries as an aligned human-readable table.
pub fn format_entries(title: &str, entries: &[AdaptEntry]) -> String {
    let headers = [
        "Policy",
        "Procs",
        "Remaps",
        "Final LB",
        "Mean LB",
        "Exec (ms)",
    ]
    .map(String::from)
    .to_vec();
    let rows: Vec<Vec<String>> = entries
        .iter()
        .map(|e| {
            vec![
                e.policy.to_string(),
                e.ranks.to_string(),
                e.remaps.to_string(),
                format!("{:.3}", e.final_lb),
                format!("{:.3}", e.mean_lb),
                format!("{:.2}", e.max_total_us / 1e3),
            ]
        })
        .collect();
    format_table(title, &headers, &rows)
}

/// Modeled *communication* time accumulates in message-arrival order, which varies with
/// host thread scheduling — its last few bits (nanoseconds and below) jitter between
/// runs.  Recorded time figures are therefore snapped to whole microseconds: the
/// rounding grid is ~10^6 times the jitter, so the odds of a value straddling a grid
/// boundary between two runs are negligible and the artifact is byte-stable.
/// Compute-derived figures (the load-balance indices) are exactly deterministic and
/// recorded at full precision.
fn stable_us(x: f64) -> Json {
    Json::Int(x.round() as i64)
}

fn entry_json(e: &AdaptEntry) -> Json {
    Json::obj(vec![
        ("policy", Json::str(e.policy)),
        ("ranks", Json::uint(e.ranks as u64)),
        ("nsteps", Json::uint(e.nsteps as u64)),
        ("remaps", Json::uint(e.remaps as u64)),
        ("final_lb", Json::Num(e.final_lb)),
        ("mean_lb", Json::Num(e.mean_lb)),
        ("max_modeled_us", stable_us(e.max_total_us)),
        (
            "lb_trajectory",
            Json::Arr(e.lb_trajectory.iter().map(|&x| Json::Num(x)).collect()),
        ),
        (
            "remap_costs",
            Json::Arr(
                e.remap_costs
                    .iter()
                    .map(|&(step, cost)| {
                        Json::obj(vec![
                            ("step", Json::uint(step as u64)),
                            ("modeled_us", stable_us(cost)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Build the full `BENCH_adapt.json` document (schema `chaos-bench/adapt/v1`).  Contains
/// no wall-clock measurement and snaps modeled times to whole microseconds, so repeated
/// runs are byte-identical — the property CI gates on.
pub fn adapt_report(ramp: &[AdaptEntry], sweep: &[AdaptEntry]) -> Json {
    Json::obj(vec![
        ("schema", Json::str("chaos-bench/adapt/v1")),
        (
            "generated_by",
            Json::str("cargo run --release -p chaos-bench --bin adapt_scenarios -- --json"),
        ),
        ("final_lb_window", Json::uint(FINAL_LB_WINDOW as u64)),
        (
            "drift_ramp",
            Json::Arr(ramp.iter().map(entry_json).collect()),
        ),
        (
            "imbalance_sweep",
            Json::Arr(sweep.iter().map(entry_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry<'a>(entries: &'a [AdaptEntry], policy: &str) -> &'a AdaptEntry {
        entries
            .iter()
            .find(|e| e.policy == policy)
            .expect("policy entry missing")
    }

    #[test]
    fn feedback_policies_beat_static_and_remap_less_than_interval() {
        // The acceptance bar of the adapt subsystem, at artifact scale: on the drifting
        // ramp the feedback policies must end better balanced than never remapping, with
        // fewer remaps than the fixed cadence at comparable final imbalance.
        let entries = drift_ramp(&RampParams::default_ramp(8));
        let stat = entry(&entries, "static");
        let interval = entry(&entries, "interval");
        let threshold = entry(&entries, "threshold");
        let cost_benefit = entry(&entries, "cost_benefit");

        assert_eq!(stat.remaps, 0);
        assert!(interval.remaps > 0);
        for feedback in [threshold, cost_benefit] {
            assert!(
                feedback.final_lb < stat.final_lb,
                "{}: final LB {:.3} should beat static {:.3}",
                feedback.policy,
                feedback.final_lb,
                stat.final_lb
            );
            assert!(
                feedback.remaps < interval.remaps,
                "{}: {} remaps should undercut interval's {}",
                feedback.policy,
                feedback.remaps,
                interval.remaps
            );
        }
        // Threshold tracks the fixed cadence's end state with fewer remaps...
        assert!(
            threshold.final_lb <= interval.final_lb * 1.05,
            "threshold final LB {:.3} should equal interval's {:.3}",
            threshold.final_lb,
            interval.final_lb
        );
        // ...while cost-benefit trades a little residual imbalance for the cheapest run:
        // it only remaps when the accumulated loss has already paid for it.
        assert!(
            cost_benefit.final_lb <= interval.final_lb * 1.25,
            "cost-benefit final LB {:.3} drifted too far from interval's {:.3}",
            cost_benefit.final_lb,
            interval.final_lb
        );
        assert!(
            cost_benefit.max_total_us <= interval.max_total_us,
            "cost-benefit total {:.0} us should not exceed interval's {:.0} us",
            cost_benefit.max_total_us,
            interval.max_total_us
        );
    }

    #[test]
    fn scenario_is_deterministic() {
        // Two identical runs must produce byte-identical reports — the property the CI
        // gate checks at full scale.
        let mut params = RampParams::default_ramp(4);
        params.nsteps = 12;
        params.nparticles = 800;
        let a = adapt_report(&drift_ramp(&params), &[]);
        let b = adapt_report(&drift_ramp(&params), &[]);
        assert_eq!(a.render_pretty(), b.render_pretty());
    }

    #[test]
    fn hierarchical_monitoring_reproduces_the_flat_decisions() {
        // The drift-ramp scenario must not care how samples reach the policy: routing
        // them through group leaders (O(log P) messages per step) has to reproduce the
        // flat all-gather's decisions — same remap steps, same remap counts — on every
        // policy of the matrix.  The recorded load-balance samples may differ in their
        // last ulps (monitoring communication charges pack/unpack compute, shifting the
        // f64 accumulation base the samples are measured against), so trajectories are
        // compared to relative 1e-9 rather than byte-for-byte.
        let mut flat = RampParams::default_ramp(8);
        flat.nsteps = 24;
        flat.nparticles = 3_000;
        let mut hier = flat.clone();
        hier.monitor_group = Some(mpsim::GroupMap::square(8).group_size());
        let a = drift_ramp(&flat);
        let b = drift_ramp(&hier);
        assert_eq!(a.len(), b.len());
        for (fa, hb) in a.iter().zip(&b) {
            assert_eq!(fa.policy, hb.policy);
            assert_eq!(fa.remaps, hb.remaps, "{}: remap count diverged", fa.policy);
            let steps = |e: &AdaptEntry| e.remap_costs.iter().map(|&(s, _)| s).collect::<Vec<_>>();
            assert_eq!(steps(fa), steps(hb), "{}: remap steps diverged", fa.policy);
            assert_eq!(fa.lb_trajectory.len(), hb.lb_trajectory.len());
            for (x, y) in fa.lb_trajectory.iter().zip(&hb.lb_trajectory) {
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs(),
                    "{}: lb sample diverged beyond measurement jitter: {x} vs {y}",
                    fa.policy
                );
            }
        }
    }

    #[test]
    fn entries_carry_full_trajectories() {
        let mut params = RampParams::default_ramp(2);
        params.nsteps = 10;
        params.nparticles = 400;
        for e in drift_ramp(&params) {
            assert_eq!(e.lb_trajectory.len(), 10);
            assert!(e
                .lb_trajectory
                .iter()
                .all(|lb| lb.is_finite() && *lb >= 1.0));
            assert!(e.final_lb >= 1.0 && e.mean_lb >= 1.0);
            assert!(e.max_total_us > 0.0);
        }
    }
}
