//! Pool smoke tests: the zero-allocation steady state of the exchange engine.
//!
//! These pin the property the engine's buffer pools exist for — after a warm-up window,
//! the steady-state executor loops (the shape of every time-stepped application in the
//! paper) draw every outgoing message buffer from the pack-buffer pool *and* every
//! incoming payload's typed scratch from the decode-scratch pool, allocating nothing
//! fresh in either direction.  The one sanctioned exception is `scatter_append`, whose
//! placement takes ownership of its payloads (`Placed::into_vec`) — its decode
//! allocations are the application's data, not engine overhead.  The counters come from
//! `mpsim::Rank::pool_stats` via the `exchange_microbench` harnesses.

use chaos_bench::microbench::{
    gather_scatter_steady, remap_steady, scatter_append_steady, steady_state_violations,
    MicrobenchConfig,
};

fn cfg() -> MicrobenchConfig {
    MicrobenchConfig {
        ranks: 8,
        warmup_iters: 4,
        measured_iters: 16,
        elements: 1024,
        items_per_rank: 128,
        ..MicrobenchConfig::default()
    }
}

#[test]
fn gather_scatter_steady_state_allocates_no_pack_buffers() {
    let r = gather_scatter_steady(&cfg());
    assert!(
        r.exchange.msgs_sent > 0,
        "the loop must actually communicate"
    );
    assert_eq!(
        r.pool_steady.allocations, 0,
        "steady-state gather/scatter drew a fresh buffer: {:?}",
        r.pool_steady
    );
    assert!(
        r.pool_steady.reuses + r.pool_steady.decode_reuses > 0,
        "steady-state loop should be served from the pools (the shared-memory POD fast \
         path draws from the decode-scratch pool instead of the pack-buffer pool)"
    );
}

#[test]
fn gather_scatter_steady_state_allocates_no_decode_scratch_either() {
    // The receive-side half of the acceptance criterion: the 8-rank gather/scatter loop
    // places every incoming payload through a borrowed view, so the decode-scratch pool
    // satisfies every request after warm-up — zero steady-state allocations in *both*
    // directions.
    let r = gather_scatter_steady(&cfg());
    assert!(r.exchange.msgs_received > 0);
    assert_eq!(
        r.pool_steady.decode_allocations, 0,
        "steady-state gather/scatter drew a fresh decode scratch: {:?}",
        r.pool_steady
    );
    assert!(
        r.pool_steady.decode_reuses > 0,
        "steady-state receives should be served from the scratch pool"
    );
    assert!(steady_state_violations(std::slice::from_ref(&r)).is_empty());
}

#[test]
fn scatter_append_steady_state_allocates_no_pack_buffers() {
    let r = scatter_append_steady(&cfg());
    assert!(r.exchange.msgs_sent > 0);
    assert_eq!(
        r.pool_steady.allocations, 0,
        "steady-state append (schedule build + scatter_append) drew a fresh buffer: {:?}",
        r.pool_steady
    );
}

#[test]
fn remap_values_steady_state_allocates_no_pack_buffers() {
    let r = remap_steady(&cfg());
    assert!(r.exchange.msgs_sent > 0);
    assert_eq!(
        r.pool_steady.allocations, 0,
        "steady-state remap_values drew a fresh buffer: {:?}",
        r.pool_steady
    );
    assert_eq!(
        r.pool_steady.decode_allocations, 0,
        "steady-state remap_values drew a fresh decode scratch: {:?}",
        r.pool_steady
    );
}

#[test]
fn pool_eliminates_at_least_thirty_percent_of_baseline_allocations() {
    // The acceptance bar of the perf issue: ≥ 30% fewer allocations than the pool-less
    // baseline (one allocation per buffer request) on the 8-rank gather/scatter loop.
    let r = gather_scatter_steady(&cfg());
    assert!(
        r.allocation_reduction_pct() >= 30.0,
        "expected ≥ 30% fewer allocations than baseline, got {:.1}% ({} of {})",
        r.allocation_reduction_pct(),
        r.pool_total.allocations,
        r.baseline_allocations()
    );
}
