//! Molecule state and deterministic seeding.
//!
//! The paper's DSMC experiments have a strongly directional flow ("more than 70 percent of
//! the molecules were found moving along the positive x-axis"), which is what makes the
//! chain partitioner along the flow direction effective.  [`FlowConfig`] controls the
//! drift-to-thermal velocity ratio so the benchmark harnesses can dial that property in,
//! and a uniform zero-drift configuration reproduces the "load deliberately evenly
//! distributed" setting of Table 4.

use mpsim::impl_element_struct;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grid::CellGrid;

/// One gas molecule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Particle {
    /// Position inside the domain.
    pub pos: [f64; 3],
    /// Velocity.
    pub vel: [f64; 3],
    /// Globally unique identifier (stable across migrations; used to make the collision
    /// phase deterministic regardless of arrival order).
    pub id: u64,
}

impl_element_struct!(Particle {
    pos: [f64; 3],
    vel: [f64; 3],
    id: u64
});

/// Flow-field parameters for particle seeding.
#[derive(Debug, Clone, Copy)]
pub struct FlowConfig {
    /// Mean drift velocity along +x (cells per unit time).
    pub drift_x: f64,
    /// Thermal (isotropic random) velocity scale.
    pub thermal: f64,
    /// RNG seed; every rank must use the same seed so seeding is reproducible everywhere.
    pub seed: u64,
}

impl FlowConfig {
    /// The paper's directional flow: drift along +x dominating the thermal motion, so
    /// roughly 70 % or more of molecules move in +x.
    pub fn directional(seed: u64) -> Self {
        Self {
            drift_x: 0.6,
            thermal: 0.5,
            seed,
        }
    }

    /// A drift-free flow whose load stays uniform (the Table 4 setting).
    pub fn uniform(seed: u64) -> Self {
        Self {
            drift_x: 0.0,
            thermal: 0.7,
            seed,
        }
    }
}

/// Seed `count` particles uniformly over the grid's domain.  Deterministic in
/// `flow.seed`, so every rank can generate the identical global particle set and keep only
/// the particles that fall in cells it owns.
pub fn seed_particles(grid: &CellGrid, count: usize, flow: &FlowConfig) -> Vec<Particle> {
    let mut rng = StdRng::seed_from_u64(flow.seed);
    (0..count)
        .map(|id| {
            let pos = [
                rng.gen_range(0.0..grid.lx),
                rng.gen_range(0.0..grid.ly),
                if grid.is_2d() {
                    grid.lz * 0.5
                } else {
                    rng.gen_range(0.0..grid.lz)
                },
            ];
            let vel = [
                flow.drift_x + rng.gen_range(-flow.thermal..flow.thermal),
                rng.gen_range(-flow.thermal..flow.thermal),
                if grid.is_2d() {
                    0.0
                } else {
                    rng.gen_range(-flow.thermal..flow.thermal)
                },
            ];
            Particle {
                pos,
                vel,
                id: id as u64,
            }
        })
        .collect()
}

/// Advance one particle by `dt`: specular reflection at the x walls (so a directional flow
/// piles molecules up against the downstream wall and the load distribution drifts, as in
/// the paper's 3-D experiment), periodic wrap in y and z.
pub fn advance(particle: &mut Particle, grid: &CellGrid, dt: f64) {
    for k in 0..3 {
        particle.pos[k] += particle.vel[k] * dt;
    }
    // Reflecting walls along x.
    if particle.pos[0] < 0.0 {
        particle.pos[0] = -particle.pos[0];
        particle.vel[0] = -particle.vel[0];
    } else if particle.pos[0] >= grid.lx {
        particle.pos[0] = (2.0 * grid.lx - particle.pos[0]).max(0.0);
        particle.vel[0] = -particle.vel[0];
    }
    particle.pos[0] = particle.pos[0].clamp(0.0, grid.lx * (1.0 - 1e-12));
    // Periodic in y (and z for 3-D grids).
    particle.pos[1] = particle.pos[1].rem_euclid(grid.ly);
    if grid.is_2d() {
        particle.pos[2] = grid.lz * 0.5;
    } else {
        particle.pos[2] = particle.pos[2].rem_euclid(grid.lz);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic_and_in_domain() {
        let grid = CellGrid::new_2d(16, 16);
        let flow = FlowConfig::directional(7);
        let a = seed_particles(&grid, 500, &flow);
        let b = seed_particles(&grid, 500, &flow);
        assert_eq!(a, b);
        for p in &a {
            assert!(p.pos[0] >= 0.0 && p.pos[0] < grid.lx);
            assert!(p.pos[1] >= 0.0 && p.pos[1] < grid.ly);
        }
        // Unique ids.
        let mut ids: Vec<u64> = a.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 500);
    }

    #[test]
    fn directional_flow_puts_most_molecules_on_positive_x() {
        let grid = CellGrid::new_3d(8, 8, 8);
        let flow = FlowConfig::directional(11);
        let particles = seed_particles(&grid, 2_000, &flow);
        let positive = particles.iter().filter(|p| p.vel[0] > 0.0).count();
        let fraction = positive as f64 / particles.len() as f64;
        assert!(
            fraction > 0.7,
            "expected >70% of molecules moving along +x, got {fraction:.2}"
        );
    }

    #[test]
    fn uniform_flow_is_roughly_symmetric() {
        let grid = CellGrid::new_2d(8, 8);
        let particles = seed_particles(&grid, 2_000, &FlowConfig::uniform(3));
        let positive = particles.iter().filter(|p| p.vel[0] > 0.0).count();
        let fraction = positive as f64 / particles.len() as f64;
        assert!(
            (0.4..0.6).contains(&fraction),
            "drift-free flow skewed: {fraction}"
        );
    }

    #[test]
    fn advance_reflects_at_x_walls_and_wraps_y() {
        let grid = CellGrid::new_2d(4, 4);
        let mut p = Particle {
            pos: [3.9, 3.9, 0.5],
            vel: [1.0, 1.0, 0.0],
            id: 0,
        };
        advance(&mut p, &grid, 0.5);
        // x reflected off the wall at 4.0, y wrapped around 4.0.
        assert!(p.pos[0] < 4.0 && p.pos[0] > 3.0);
        assert!(p.vel[0] < 0.0);
        assert!(p.pos[1] < 1.0);
        assert!(p.vel[1] > 0.0);
    }

    #[test]
    fn advance_keeps_particles_inside_the_domain() {
        let grid = CellGrid::new_3d(4, 4, 4);
        let flow = FlowConfig::directional(5);
        let mut particles = seed_particles(&grid, 200, &flow);
        for _ in 0..50 {
            for p in &mut particles {
                advance(p, &grid, 0.4);
                assert!(p.pos[0] >= 0.0 && p.pos[0] < grid.lx);
                assert!(p.pos[1] >= 0.0 && p.pos[1] < grid.ly);
                assert!(p.pos[2] >= 0.0 && p.pos[2] < grid.lz);
            }
        }
    }

    #[test]
    fn particle_encodes_through_the_message_layer() {
        let p = Particle {
            pos: [1.5, -2.25, 0.0],
            vel: [0.125, 3.0, -1.0],
            id: 987_654,
        };
        let bytes = mpsim::message::encode_slice(&[p]);
        assert_eq!(bytes.len(), 56);
        assert_eq!(mpsim::message::decode_vec::<Particle>(&bytes), vec![p]);
    }
}
