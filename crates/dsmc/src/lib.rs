//! # dsmc — a Direct Simulation Monte Carlo (particle-in-cell) mini-application
//!
//! The paper's second adaptive application is DSMC: gas molecules move through a cartesian
//! grid of cells, collide only with molecules in the same cell, and migrate between cells
//! every time step (the MOVE phase of Figure 3).  Parallelisation distributes cells — and
//! with them their molecules — over processors, which creates the three difficulties the
//! paper lists: per-step particle migration, per-step regeneration of the indirection
//! structure, and drifting load imbalance that demands periodic remapping.
//!
//! * [`grid`] — the 2-D/3-D cartesian cell grid;
//! * [`particles`] — molecule state, deterministic seeding with a directional drift;
//! * [`collide`] — the per-cell collision phase (deterministic given cell id and step);
//! * [`sequential`] — the single-address-space reference implementation;
//! * [`parallel`] — the CHAOS parallelisation: light-weight vs regular schedules for the
//!   MOVE phase (Table 4) and static vs RCB vs chain-partitioned remapping (Table 5).

pub mod collide;
pub mod grid;
pub mod parallel;
pub mod particles;
pub mod sequential;

pub use grid::CellGrid;
pub use parallel::{DsmcConfig, DsmcPhaseTimes, DsmcStats, MoveMode, RemapStrategy};
pub use particles::{seed_particles, FlowConfig, Particle};
pub use sequential::SequentialDsmc;
