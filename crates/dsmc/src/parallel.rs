//! The CHAOS parallelisation of DSMC (§4.2 of the paper).
//!
//! Cells (and the molecules inside them) are distributed over processors through a
//! replicated cell-owner map.  Each time step has three parallel phases:
//!
//! 1. **collision** — embarrassingly parallel over owned cells;
//! 2. **MOVE** — molecules whose new position falls in a cell owned by another processor
//!    must migrate.  Two implementations are provided, matching the two columns of
//!    Table 4:
//!    * [`MoveMode::Lightweight`] — a [`chaos::schedule::LightweightSchedule`] is built
//!      from the destination processors (one exchange of counts) and whole molecules are
//!      appended split-phase: `scatter_append_start` posts the migrants, the surviving
//!      molecules are re-binned into their cells *while the exchange is in flight*, and
//!      `scatter_append_finish` collects the arrivals; arrival order is irrelevant, so no
//!      placement preprocessing is needed;
//!    * [`MoveMode::Regular`] — emulates the pre-CHAOS path with regular schedules: every
//!      step the destination indices are exchanged and placement slots assigned (the
//!      per-step inspector), and the molecule data is shipped attribute-array by
//!      attribute-array with prescribed placement, exactly the overhead the paper's
//!      light-weight schedules remove.
//!    * [`MoveMode::Patched`] — a *maintained* regular schedule over the destination
//!      cells: the per-step inspector is replaced by stamped re-hashing of the drifted
//!      destination-cell set plus [`chaos::maintained::patch_schedule`], which ships only
//!      the changed rows to the owners.  The data path (per-row molecule counts through
//!      the schedule's scatter direction, then one payload message per communicating
//!      pair) depends only on the schedule bytes — and patched schedules are byte-identical
//!      to rebuilds — so running with upkeep-by-patching and upkeep-by-rebuilding produces
//!      identical fingerprints and identical data-path message totals, while the
//!      preprocessing cost drops with the drift fraction.
//! 3. **remapping** — a [`chaos::adapt::RemapController`] watches the measured per-rank
//!    collision compute times (one all-gather per step) and decides collectively when to
//!    re-partition.  The default [`RemapPolicy::Interval`] reproduces the paper's fixed
//!    cadence (Table 5 remaps every 40 steps); [`RemapPolicy::Threshold`] and
//!    [`RemapPolicy::CostBenefit`] remap from the drift of the load-balance index instead.
//!    When a remap fires, the cells are re-partitioned from their current molecule counts
//!    using recursive coordinate bisection or the chain partitioner and the affected
//!    molecules migrate to the new owners (Table 5).

use std::collections::HashMap;

use chaos::adapt::{MonitorTopology, RemapController, RemapPolicy};
use chaos::prelude::*;
use mpsim::{alltoallv, ExchangePlan, ExchangeStats, Rank, TimeSnapshot};

use crate::collide::collide_cell;
use crate::grid::CellGrid;
use crate::particles::{advance, Particle};

/// How the MOVE phase transports molecules (the Table 4 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveMode {
    /// Light-weight schedules + `scatter_append` (the CHAOS contribution).
    Lightweight,
    /// Regular schedules: per-step placement preprocessing and per-attribute transport.
    Regular,
    /// A maintained regular schedule over the destination cells, kept current across
    /// steps instead of rebuilt.  `rebuild_every_step: false` patches the schedule
    /// forward (cost proportional to the drift); `true` rebuilds it from the same hash
    /// table every step — the baseline the patch path is benchmarked (and pinned
    /// byte-identical) against.  Both take exactly the same data path.
    Patched {
        /// Rebuild from scratch each step instead of patching (comparison baseline).
        rebuild_every_step: bool,
    },
}

/// How (and whether) cells are periodically re-partitioned (the Table 5 comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapStrategy {
    /// Keep the initial BLOCK distribution of cells for the whole run.
    Static,
    /// Re-partition with recursive coordinate bisection every `remap_interval` steps.
    RecursiveBisection,
    /// Re-partition with the 1-D chain partitioner along the flow (x) axis.
    Chain,
}

/// Configuration of one parallel DSMC run.
#[derive(Debug, Clone)]
pub struct DsmcConfig {
    /// Number of time steps.
    pub nsteps: usize,
    /// Time-step length.
    pub dt: f64,
    /// MOVE-phase implementation.
    pub move_mode: MoveMode,
    /// Remapping strategy.
    pub remap: RemapStrategy,
    /// Steps between remaps for the default interval policy (the paper remaps every 40
    /// steps).  `0` means "never remap" — the run behaves like [`RemapStrategy::Static`].
    pub remap_interval: usize,
    /// When to remap.  `None` uses the paper-compatible fixed cadence
    /// (`RemapPolicy::Interval { every: remap_interval }`), which needs no measurement
    /// and therefore adds no communication; `Some` plugs in any
    /// [`chaos::adapt::RemapPolicy`], driven by per-step collision-time sampling (one
    /// all-gather per step), and records the load-balance trajectory.  Ignored for
    /// [`RemapStrategy::Static`], which never remaps.
    pub policy: Option<RemapPolicy>,
    /// Monitoring topology for measured policies: `None` runs the flat all-gather
    /// (every rank sees every sample), `Some(g)` reduces samples hierarchically to
    /// group leaders of size-`g` groups — O(log P) messages per monitored step instead
    /// of O(log P) rounds carrying O(P) blocks — reaching the same remap decisions as
    /// flat (see [`chaos::adapt::MonitorTopology`]).  Ignored without an explicit `policy`.
    pub monitor_group: Option<usize>,
    /// Collision RNG seed (must match the sequential reference for comparisons).
    pub seed: u64,
}

impl DsmcConfig {
    /// Light-weight MOVE, no remapping — the Table 4 baseline configuration.
    pub fn lightweight(nsteps: usize, seed: u64) -> Self {
        Self {
            nsteps,
            dt: 0.4,
            move_mode: MoveMode::Lightweight,
            remap: RemapStrategy::Static,
            remap_interval: 40,
            policy: None,
            monitor_group: None,
            seed,
        }
    }

    /// The remap policy this configuration resolves to: the explicit `policy` if set,
    /// otherwise the paper's fixed cadence at `remap_interval` (0 = never).  A
    /// [`RemapStrategy::Static`] run never remaps regardless of the policy.
    pub fn effective_policy(&self) -> RemapPolicy {
        if self.remap == RemapStrategy::Static {
            RemapPolicy::Interval { every: 0 }
        } else {
            self.policy.clone().unwrap_or(RemapPolicy::Interval {
                every: self.remap_interval,
            })
        }
    }
}

/// Modeled time per phase on this rank.
#[derive(Debug, Clone, Copy, Default)]
pub struct DsmcPhaseTimes {
    /// Collision phase (pure computation).
    pub collide: TimeSnapshot,
    /// MOVE-phase preprocessing: schedule construction / placement negotiation.
    pub move_preprocess: TimeSnapshot,
    /// Bringing the maintained MOVE schedule up to date — the build or patch collective
    /// of [`MoveMode::Patched`], timed separately so the patch-vs-rebuild comparison
    /// reads straight off the phase table.  Zero for the other modes.
    pub move_upkeep: TimeSnapshot,
    /// MOVE-phase data transport and re-binning.
    pub move_data: TimeSnapshot,
    /// Running the partitioner during remaps.
    pub remap_partition: TimeSnapshot,
    /// Migrating molecules to their cells' new owners during remaps.
    pub remap_migrate: TimeSnapshot,
    /// The remap controller's measurement collectives: sampling the per-rank collision
    /// times each step and recording remap costs.
    pub monitor: TimeSnapshot,
}

impl DsmcPhaseTimes {
    /// Total modeled time across all phases.
    pub fn total(&self) -> TimeSnapshot {
        self.collide
            + self.move_preprocess
            + self.move_upkeep
            + self.move_data
            + self.remap_migrate
            + self.remap_partition
            + self.monitor
    }
}

/// Schedule-upkeep counters for [`MoveMode::Patched`] (all zero for the other modes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScheduleUpkeep {
    /// Full collective schedule builds.
    pub builds: usize,
    /// Incremental patches applied to the maintained schedule.
    pub patches: usize,
    /// Edit records shipped to owners across all patches (sent side).
    pub edits: usize,
}

/// Per-run summary returned by [`run_parallel`].
#[derive(Debug, Clone)]
pub struct DsmcStats {
    /// Modeled per-phase times on this rank.
    pub phases: DsmcPhaseTimes,
    /// Collision pairs processed on this rank.
    pub collisions: usize,
    /// Molecules this rank shipped to other processors during MOVE phases.
    pub migrations: usize,
    /// Number of remapping events.
    pub remaps: usize,
    /// The load-balance index of the collision phase at every step, as measured by the
    /// remap controller (identical on every rank).  Empty unless an explicit
    /// `config.policy` opted into per-step sampling — the paper-default cadence decides
    /// without measuring.
    pub lb_trajectory: Vec<f64>,
    /// `(step, machine-wide modeled cost in us)` of every remap performed, in order —
    /// the cost figures the [`chaos::adapt::RemapPolicy::CostBenefit`] policy amortises
    /// (identical on every rank).
    pub remap_costs: Vec<(usize, f64)>,
    /// Wire totals of the MOVE **data** path (count + payload exchanges) for
    /// [`MoveMode::Patched`], summed over steps.  How the schedule was kept current
    /// (patch vs rebuild) must not show up here — the equivalence tests pin these totals
    /// identical across both upkeep settings.  Zero for the other modes.
    pub move_data_exchange: ExchangeStats,
    /// Schedule-upkeep counters for [`MoveMode::Patched`].
    pub schedule_upkeep: ScheduleUpkeep,
    /// Molecules held at the end of the run.
    pub final_particle_count: usize,
    /// (cell id, sorted molecule ids) for every non-empty owned cell — compared against
    /// [`crate::sequential::SequentialDsmc::fingerprint`].
    pub fingerprint: Vec<(usize, Vec<u64>)>,
}

/// Run the parallel DSMC simulation on the calling rank.  Collective: all ranks must call
/// with the same grid, particle set and configuration.  `particles` is the *global*
/// initial particle set (deterministically seeded on every rank); each rank keeps the
/// molecules that start in cells it owns.
pub fn run_parallel(
    rank: &mut Rank,
    grid: &CellGrid,
    particles: &[Particle],
    config: &DsmcConfig,
) -> DsmcStats {
    let nprocs = rank.nprocs();
    let me = rank.rank();

    let mut phases = DsmcPhaseTimes::default();
    let mut collisions = 0usize;
    let mut migrations = 0usize;
    let mut remaps = 0usize;

    // The feedback controller that decides when to remap.  Static runs without an explicit
    // policy skip the per-step sampling entirely (zero overhead, the pre-controller
    // behaviour); a Static run *with* a policy samples the trajectory but never remaps.
    let mut controller =
        (config.policy.is_some() || config.remap != RemapStrategy::Static).then(|| {
            let ctrl = RemapController::new(config.effective_policy());
            match config.monitor_group {
                Some(group) => ctrl.with_topology(MonitorTopology::Hierarchical { group }),
                None => ctrl,
            }
        });
    let mut remap_costs: Vec<(usize, f64)> = Vec::new();

    // Initial static decomposition: equal slabs of cell columns along x (the natural
    // hand-written decomposition for a channel flow).  The owner map is replicated.
    let mut cell_owner: Vec<ProcId> = initial_owner_map(grid, nprocs);
    // Molecules of owned cells, keyed by global cell id.
    let mut cells: HashMap<usize, Vec<Particle>> = HashMap::new();
    for (cell, &owner) in cell_owner.iter().enumerate() {
        if owner == me {
            cells.insert(cell, Vec::new());
        }
    }
    for p in particles {
        let cell = grid.cell_of_position(p.pos);
        if cell_owner[cell] == me {
            cells.get_mut(&cell).expect("owned cell missing").push(*p);
        }
    }

    // Reused across steps: molecules leaving their cell this step, as (destination cell,
    // molecule), and molecules staying put, as (cell, molecule).  Clearing instead of
    // reallocating keeps the steady-state MOVE loop free of per-step growth allocations
    // once the high-water mark is reached.
    let mut outgoing: Vec<(usize, Particle)> = Vec::new();
    let mut survivors: Vec<(usize, Particle)> = Vec::new();

    // Persistent inspector state of the patched MOVE path (the maintained schedule and
    // the hash table it patches from).  `None` for the other modes.
    let mut patched_state = matches!(config.move_mode, MoveMode::Patched { .. })
        .then(|| PatchedMoveState::new(me, &cell_owner, nprocs));

    for step in 0..config.nsteps {
        // ------------------------------------------------------------------- collisions --
        let t0 = rank.modeled();
        let mut owned_cells: Vec<usize> = cells.keys().copied().collect();
        owned_cells.sort_unstable();
        for &cell in &owned_cells {
            let list = cells.get_mut(&cell).expect("owned cell missing");
            let pairs = collide_cell(cell, step, config.seed, list);
            collisions += pairs;
            rank.charge_compute(pairs as f64 * 2.0 + list.len() as f64 * 0.3 + 0.2);
        }
        let collide_step = rank.modeled().since(&t0);
        phases.collide += collide_step;

        // ------------------------------------------------------------------- MOVE phase --
        // Advance molecules, splitting them into survivors (same cell) and migrants
        // (different cell — possibly one this rank also owns).  Survivors are not put
        // back yet: the light-weight path posts the migrant exchange first and re-bins
        // them while it is in flight.
        let t0 = rank.modeled();
        outgoing.clear();
        survivors.clear();
        for &cell in &owned_cells {
            let list = cells.get_mut(&cell).expect("owned cell missing");
            for mut p in list.drain(..) {
                advance(&mut p, grid, config.dt);
                let new_cell = grid.cell_of_position(p.pos);
                if new_cell == cell {
                    survivors.push((cell, p));
                } else {
                    outgoing.push((new_cell, p));
                }
            }
        }
        phases.move_data += rank.modeled().since(&t0);

        let arrivals = match config.move_mode {
            MoveMode::Lightweight => move_lightweight(
                rank,
                &outgoing,
                &mut survivors,
                &cell_owner,
                &mut cells,
                &mut phases,
                &mut migrations,
            ),
            MoveMode::Regular => {
                // The regular path has no split phase: survivors go straight back, then
                // the per-step inspector (which reads the cells' current occupancy) and
                // the per-attribute transport run as before.
                let t0 = rank.modeled();
                rebin_survivors(rank, &mut survivors, &mut cells);
                phases.move_data += rank.modeled().since(&t0);
                move_regular(
                    rank,
                    &outgoing,
                    &cell_owner,
                    &cells,
                    &mut phases,
                    &mut migrations,
                )
            }
            MoveMode::Patched { rebuild_every_step } => {
                // Like the regular path, survivors go straight back; the maintained
                // schedule is then brought up to date (patch or rebuild) and the
                // migrants re-binned into it.
                let t0 = rank.modeled();
                rebin_survivors(rank, &mut survivors, &mut cells);
                phases.move_data += rank.modeled().since(&t0);
                move_patched(
                    rank,
                    grid,
                    &outgoing,
                    &cell_owner,
                    &cells,
                    patched_state.as_mut().expect("state exists for Patched"),
                    rebuild_every_step,
                    &mut phases,
                    &mut migrations,
                )
            }
        };

        // Re-bin arrivals (their destination cell is recomputed from the position — the
        // "order of elements within a row does not matter" property).
        let t0 = rank.modeled();
        for p in arrivals {
            let cell = grid.cell_of_position(p.pos);
            debug_assert_eq!(cell_owner[cell], me, "molecule delivered to the wrong rank");
            cells.entry(cell).or_default().push(p);
        }
        phases.move_data += rank.modeled().since(&t0);

        // ------------------------------------------------------------------- remapping --
        // With an explicit policy, feed this step's measured collision compute time to
        // the controller (one all-gather, so every rank sees the same per-rank vector
        // and reaches the same decision) and report remap costs back.  The paper-default
        // fixed cadence needs no measurement to decide, so it ticks the controller
        // locally and pays zero monitoring communication — exactly the pre-controller
        // behaviour.
        if let Some(ctrl) = controller.as_mut() {
            let measured = config.policy.is_some();
            let decision = if measured {
                let t0 = rank.modeled();
                let d = ctrl.observe_sample(rank, collide_step.compute_us);
                phases.monitor += rank.modeled().since(&t0);
                d
            } else {
                ctrl.tick()
            };
            if decision.remap && config.remap != RemapStrategy::Static {
                remaps += 1;
                let bytes_before = rank.stats().bytes_sent;
                let t0 = rank.modeled();
                remap_cells(rank, grid, config, &mut cell_owner, &mut cells, &mut phases);
                if let Some(state) = patched_state.as_mut() {
                    state.distribution_changed(&cell_owner, nprocs);
                }
                let remap_cost = rank.modeled().since(&t0).total_us();
                let moved = rank.stats().bytes_sent - bytes_before;
                if measured {
                    let t0 = rank.modeled();
                    ctrl.record_remap(rank, moved, remap_cost);
                    phases.monitor += rank.modeled().since(&t0);
                    remap_costs.push((
                        step,
                        ctrl.last_remap_cost_us().expect("remap cost just recorded"),
                    ));
                }
            }
        }
    }

    let mut fingerprint: Vec<(usize, Vec<u64>)> = cells
        .iter()
        .filter(|(_, v)| !v.is_empty())
        .map(|(&cell, v)| {
            let mut ids: Vec<u64> = v.iter().map(|p| p.id).collect();
            ids.sort_unstable();
            (cell, ids)
        })
        .collect();
    fingerprint.sort_unstable();

    DsmcStats {
        phases,
        collisions,
        migrations,
        remaps,
        lb_trajectory: controller
            .map(|c| c.lb_trajectory().to_vec())
            .unwrap_or_default(),
        remap_costs,
        move_data_exchange: patched_state
            .as_ref()
            .map(|s| s.exchange)
            .unwrap_or_default(),
        schedule_upkeep: patched_state.map(|s| s.upkeep).unwrap_or_default(),
        final_particle_count: cells.values().map(Vec::len).sum(),
        fingerprint,
    }
}

/// The stamp under which [`MoveMode::Patched`] hashes each step's destination cells.
const MOVE_STAMP: Stamp = Stamp::new(0);

/// Persistent inspector state of the [`MoveMode::Patched`] MOVE path: the indirection
/// being maintained is "which off-processor cells do my molecules migrate into", and it
/// drifts a little every step — exactly the shape delta-schedule maintenance amortises.
struct PatchedMoveState {
    /// Replicated translation table over the cell-owner map (rebuilt on remap).
    ttable: TranslationTable,
    /// Stamped hash of destination cells; survives across steps so translations and
    /// ghost slots are reused, and survives remaps via `clear_all` (epoch bump).
    hash: IndexHashTable,
    /// The maintained migration schedule; `None` until the first step builds it.
    sched: Option<MaintainedSchedule>,
    upkeep: ScheduleUpkeep,
    exchange: ExchangeStats,
}

impl PatchedMoveState {
    fn new(me: ProcId, cell_owner: &[ProcId], nprocs: usize) -> Self {
        let ttable = TranslationTable::replicated_from_full_map(cell_owner, nprocs)
            .expect("cell owners are valid ranks");
        let hash = IndexHashTable::new(me, ttable.local_size(me));
        Self {
            ttable,
            hash,
            sched: None,
            upkeep: ScheduleUpkeep::default(),
            exchange: ExchangeStats::default(),
        }
    }

    /// A remap changed the cell-owner map: every cached translation is stale.  The hash
    /// table is cleared (not replaced), so its epoch bump flows into the schedule key and
    /// the next upkeep ships a full replacement through the ordinary patch path.
    fn distribution_changed(&mut self, cell_owner: &[ProcId], nprocs: usize) {
        self.ttable = TranslationTable::replicated_from_full_map(cell_owner, nprocs)
            .expect("cell owners are valid ranks");
        self.hash.clear_all();
    }
}

/// MOVE phase over a maintained regular schedule (see [`MoveMode::Patched`]).
///
/// Preprocessing re-hashes the step's off-processor destination cells under a fresh
/// stamp and brings the maintained schedule up to date — by patch or, for the baseline,
/// by rebuild; both yield byte-identical schedules.  The data path then ships per-row
/// molecule counts through the schedule's scatter direction and the molecules themselves
/// through one sparse payload exchange, placing arrivals row by row into the owners'
/// cells (validated against the positions in debug builds).
#[allow(clippy::too_many_arguments)]
fn move_patched(
    rank: &mut Rank,
    grid: &CellGrid,
    outgoing: &[(usize, Particle)],
    cell_owner: &[ProcId],
    cells: &HashMap<usize, Vec<Particle>>,
    state: &mut PatchedMoveState,
    rebuild_every_step: bool,
    phases: &mut DsmcPhaseTimes,
    migrations: &mut usize,
) -> Vec<Particle> {
    let nprocs = rank.nprocs();
    let me = rank.rank();

    // ---- inspector upkeep: re-hash the drifted destination set, patch the schedule ----
    let t0 = rank.modeled();
    let mut dest_cells: Vec<usize> = Vec::new();
    let mut arrivals: Vec<Particle> = Vec::new(); // molecules migrating between my own cells
    let mut offproc: Vec<(usize, Particle)> = Vec::new();
    for &(cell, p) in outgoing {
        if cell_owner[cell] == me {
            arrivals.push(p);
        } else {
            dest_cells.push(cell);
            offproc.push((cell, p));
        }
    }
    *migrations += offproc.len();
    state.hash.clear_stamp(MOVE_STAMP);
    state
        .hash
        .hash_in_replicated(rank, &state.ttable, &dest_cells, MOVE_STAMP);
    phases.move_preprocess += rank.modeled().since(&t0);

    let t0 = rank.modeled();
    let query = StampQuery::single(MOVE_STAMP);
    match state.sched.as_mut() {
        Some(ms) if !rebuild_every_step => {
            let patch = patch_schedule(rank, &state.hash, ms);
            state.upkeep.patches += 1;
            state.upkeep.edits += patch.edits_sent;
        }
        _ => {
            state.sched = Some(build_maintained(rank, &state.hash, query));
            state.upkeep.builds += 1;
        }
    }
    let sched = state.sched.as_ref().expect("schedule just ensured");
    phases.move_upkeep += rank.modeled().since(&t0);

    // ---- data path: per-row counts through the scatter direction, then the payload ----
    // Identical whether the schedule was patched or rebuilt, because it depends only on
    // the schedule bytes.
    let t0 = rank.modeled();
    let mut row_of_slot: HashMap<u32, (usize, u32)> = HashMap::new();
    for p in 0..nprocs {
        for (row, &slot) in sched.perm_lists[p].iter().enumerate() {
            row_of_slot.insert(slot, (p, row as u32));
        }
    }
    let mut counts: Vec<Vec<u32>> = (0..nprocs)
        .map(|p| vec![0u32; sched.fetch_size(p)])
        .collect();
    let mut binned: Vec<Vec<(u32, usize)>> = vec![Vec::new(); nprocs];
    for (k, (cell, _)) in offproc.iter().enumerate() {
        let entry = state.hash.get(*cell).expect("destination cell just hashed");
        let slot = entry
            .ghost_slot
            .expect("off-processor cell has a ghost slot");
        let (p, row) = row_of_slot[&slot];
        counts[p][row as usize] += 1;
        binned[p].push((row, k));
    }
    rank.charge_compute(offproc.len() as f64 * 0.1);
    let payload: Vec<Vec<Particle>> = binned
        .iter_mut()
        .map(|b| {
            // Stable by row: within a row, molecules keep their advance-scan order.
            b.sort_by_key(|&(row, _)| row);
            b.iter().map(|&(_, k)| offproc[k].1).collect()
        })
        .collect();
    let mut incoming_counts: Vec<Vec<u32>> = vec![Vec::new(); nprocs];
    let ex_counts = alltoallv(rank, &sched.scatter_plan(me), &counts, |src, placed| {
        incoming_counts[src] = placed.into_vec();
    });
    let payload_send: Vec<usize> = payload.iter().map(Vec::len).collect();
    let payload_recv: Vec<usize> = incoming_counts
        .iter()
        .map(|c| c.iter().map(|&n| n as usize).sum())
        .collect();
    let pplan = ExchangePlan::sparse(me, payload_send, payload_recv);
    let mut recv_payload: Vec<Vec<Particle>> = vec![Vec::new(); nprocs];
    let ex_payload = alltoallv(rank, &pplan, &payload, |src, placed| {
        recv_payload[src] = placed.into_vec();
    });
    state.exchange = state.exchange.merged(&ex_counts).merged(&ex_payload);

    // Place arrivals by schedule row: row `r` from `src` belongs in the owned cell at
    // offset `send_lists[src][r]` (owner offsets number owned cells in global order).
    let mut owned_sorted: Vec<usize> = cells.keys().copied().collect();
    owned_sorted.sort_unstable();
    for src in 0..nprocs {
        debug_assert_eq!(incoming_counts[src].len(), sched.send_size(src));
        let mut next = recv_payload[src].iter();
        for (row, &n) in incoming_counts[src].iter().enumerate() {
            for _ in 0..n {
                let p = *next.next().expect("payload shorter than its counts");
                debug_assert_eq!(
                    grid.cell_of_position(p.pos),
                    owned_sorted[sched.send_lists[src][row] as usize],
                    "schedule placement disagrees with the molecule position"
                );
                arrivals.push(p);
            }
        }
        debug_assert!(next.next().is_none(), "payload longer than its counts");
    }
    rank.charge_compute(arrivals.len() as f64 * 0.3);
    phases.move_data += rank.modeled().since(&t0);
    arrivals
}

/// Put the surviving molecules back into their cells (in scan order, so per-cell order —
/// and with it the collision RNG trajectory — matches the pre-split-phase executor).
fn rebin_survivors(
    rank: &mut Rank,
    survivors: &mut Vec<(usize, Particle)>,
    cells: &mut HashMap<usize, Vec<Particle>>,
) {
    rank.charge_compute(survivors.len() as f64 * 0.2);
    for (cell, p) in survivors.drain(..) {
        cells.get_mut(&cell).expect("owned cell missing").push(p);
    }
}

/// The static decomposition used before any remapping: contiguous slabs of cell columns
/// along the x axis, one slab per processor (balanced to within one column).
pub fn initial_owner_map(grid: &CellGrid, nprocs: usize) -> Vec<ProcId> {
    let column_owner: Vec<ProcId> = chaos::partitioners::block_map(grid.nx, nprocs.min(grid.nx));
    (0..grid.ncells())
        .map(|cell| {
            let (ix, _, _) = grid.cell_coords(cell);
            column_owner[ix]
        })
        .collect()
}

/// MOVE phase with a light-weight schedule, split-phase: one exchange of counts, one
/// append message per destination processor posted immediately (whole molecules as
/// payload), the surviving molecules re-binned into their cells *while the migrants are
/// in flight*, and the arrivals collected last.
fn move_lightweight(
    rank: &mut Rank,
    outgoing: &[(usize, Particle)],
    survivors: &mut Vec<(usize, Particle)>,
    cell_owner: &[ProcId],
    cells: &mut HashMap<usize, Vec<Particle>>,
    phases: &mut DsmcPhaseTimes,
    migrations: &mut usize,
) -> Vec<Particle> {
    let me = rank.rank();
    let t0 = rank.modeled();
    // One pass builds both append inputs: destination ranks (the entire input of the
    // light-weight inspector) and the item payloads the append packs from.
    let mut dests: Vec<ProcId> = Vec::with_capacity(outgoing.len());
    let mut items: Vec<Particle> = Vec::with_capacity(outgoing.len());
    for (cell, p) in outgoing {
        dests.push(cell_owner[*cell]);
        items.push(*p);
    }
    let sched = LightweightSchedule::build(rank, &dests);
    phases.move_preprocess += rank.modeled().since(&t0);

    let t0 = rank.modeled();
    *migrations += dests.iter().filter(|&&d| d != me).count();
    // Post the migrants, overlap the survivor re-binning with their flight, then drain.
    let inflight = scatter_append_start(rank, &sched, &items);
    rebin_survivors(rank, survivors, cells);
    let arrivals = scatter_append_finish(rank, &sched, inflight);
    phases.move_data += rank.modeled().since(&t0);
    arrivals
}

/// MOVE phase emulating regular schedules: the destination indices are exchanged and
/// placement slots assigned every step (per-step inspector), and the molecule data is
/// shipped one attribute array at a time with prescribed placement.
fn move_regular(
    rank: &mut Rank,
    outgoing: &[(usize, Particle)],
    cell_owner: &[ProcId],
    cells: &HashMap<usize, Vec<Particle>>,
    phases: &mut DsmcPhaseTimes,
    migrations: &mut usize,
) -> Vec<Particle> {
    let nprocs = rank.nprocs();
    let me = rank.rank();

    // ---- per-step inspector: exchange destination cells, assign placement slots --------
    let t0 = rank.modeled();
    let mut dest_cells_by_proc: Vec<Vec<u64>> = vec![Vec::new(); nprocs];
    let mut order_by_proc: Vec<Vec<usize>> = vec![Vec::new(); nprocs];
    for (k, (cell, _)) in outgoing.iter().enumerate() {
        let dest = cell_owner[*cell];
        dest_cells_by_proc[dest].push(*cell as u64);
        order_by_proc[dest].push(k);
    }
    // Owners learn which of their cells will receive molecules and assign each incoming
    // molecule a slot in the destination cell's array (the data-placement-order
    // preprocessing that light-weight schedules eliminate).
    let incoming_cells = rank.all_to_all(&dest_cells_by_proc);
    let mut next_slot: HashMap<usize, u64> = cells
        .iter()
        .map(|(&cell, v)| (cell, v.len() as u64))
        .collect();
    let slot_replies: Vec<Vec<u64>> = incoming_cells
        .iter()
        .map(|req| {
            req.iter()
                .map(|&cell| {
                    let slot = next_slot.entry(cell as usize).or_insert(0);
                    let s = *slot;
                    *slot += 1;
                    s
                })
                .collect()
        })
        .collect();
    rank.charge_compute(incoming_cells.iter().map(Vec::len).sum::<usize>() as f64 * 0.4);
    let _assigned_slots = rank.all_to_all(&slot_replies);
    phases.move_preprocess += rank.modeled().since(&t0);

    // ---- data transport: one exchange per attribute array, then reconstruct ------------
    let t0 = rank.modeled();
    *migrations += outgoing
        .iter()
        .filter(|(cell, _)| cell_owner[*cell] != me)
        .count();
    let gather_attr = |rank: &mut Rank, attr: &dyn Fn(&Particle) -> f64| -> Vec<Vec<f64>> {
        let sends: Vec<Vec<f64>> = order_by_proc
            .iter()
            .map(|idxs| idxs.iter().map(|&k| attr(&outgoing[k].1)).collect())
            .collect();
        rank.all_to_all(&sends)
    };
    let xs = gather_attr(rank, &|p| p.pos[0]);
    let ys = gather_attr(rank, &|p| p.pos[1]);
    let zs = gather_attr(rank, &|p| p.pos[2]);
    let vxs = gather_attr(rank, &|p| p.vel[0]);
    let vys = gather_attr(rank, &|p| p.vel[1]);
    let vzs = gather_attr(rank, &|p| p.vel[2]);
    let id_sends: Vec<Vec<u64>> = order_by_proc
        .iter()
        .map(|idxs| idxs.iter().map(|&k| outgoing[k].1.id).collect())
        .collect();
    let ids = rank.all_to_all(&id_sends);

    // Reconstruct the arriving molecules (placement by slot reduces to insertion order
    // here because the destination arrays are re-binned afterwards; the cost of the
    // bookkeeping is what matters and has already been charged).
    let mut arrivals = Vec::new();
    for p in 0..nprocs {
        for k in 0..ids[p].len() {
            arrivals.push(Particle {
                pos: [xs[p][k], ys[p][k], zs[p][k]],
                vel: [vxs[p][k], vys[p][k], vzs[p][k]],
                id: ids[p][k],
            });
        }
    }
    rank.charge_compute(arrivals.len() as f64 * 0.6);
    phases.move_data += rank.modeled().since(&t0);
    arrivals
}

/// Re-partition the cells from their current molecule counts and migrate molecules to the
/// new owners.
fn remap_cells(
    rank: &mut Rank,
    grid: &CellGrid,
    config: &DsmcConfig,
    cell_owner: &mut [ProcId],
    cells: &mut HashMap<usize, Vec<Particle>>,
    phases: &mut DsmcPhaseTimes,
) {
    let nprocs = rank.nprocs();
    let me = rank.rank();

    // ---- run the partitioner over the owned cells --------------------------------------
    let t0 = rank.modeled();
    let mut owned_cells: Vec<usize> = cells.keys().copied().collect();
    owned_cells.sort_unstable();
    let weights: Vec<f64> = owned_cells
        .iter()
        .map(|c| 1.0 + cells[c].len() as f64)
        .collect();
    let new_parts: Vec<ProcId> = match config.remap {
        RemapStrategy::Static => owned_cells.iter().map(|&c| cell_owner[c]).collect(),
        RemapStrategy::RecursiveBisection => {
            let coords: Vec<[f64; 3]> = owned_cells.iter().map(|&c| grid.cell_center(c)).collect();
            rcb_partition(rank, PartitionInput::new(&coords, &weights), nprocs)
        }
        RemapStrategy::Chain => {
            let xs: Vec<f64> = owned_cells
                .iter()
                .map(|&c| grid.cell_center(c)[0])
                .collect();
            chain_partition(rank, &xs, &weights, nprocs)
        }
    };
    // Publish the new owner map (it is replicated, like the paper's translation table for
    // DSMC cells).
    let updates: Vec<(u64, u64)> = owned_cells
        .iter()
        .zip(&new_parts)
        .map(|(&c, &p)| (c as u64, p as u64))
        .collect();
    let all_updates = rank.all_gather(&updates);
    for part in all_updates {
        for (cell, owner) in part {
            cell_owner[cell as usize] = owner as usize;
        }
    }
    phases.remap_partition += rank.modeled().since(&t0);

    // ---- migrate molecules of reassigned cells ------------------------------------------
    let t0 = rank.modeled();
    let mut moving: Vec<Particle> = Vec::new();
    let mut dests: Vec<ProcId> = Vec::new();
    for &cell in &owned_cells {
        let new_owner = cell_owner[cell];
        if new_owner != me {
            let list = cells.remove(&cell).expect("owned cell missing");
            for p in list {
                moving.push(p);
                dests.push(new_owner);
            }
        }
    }
    // Cells we now own (possibly empty) must exist in the map.
    for (cell, &owner) in cell_owner.iter().enumerate() {
        if owner == me {
            cells.entry(cell).or_default();
        }
    }
    let sched = LightweightSchedule::build(rank, &dests);
    let arrivals = scatter_append(rank, &sched, &moving);
    for p in arrivals {
        let cell = grid.cell_of_position(p.pos);
        debug_assert_eq!(cell_owner[cell], me);
        cells.entry(cell).or_default().push(p);
    }
    phases.remap_migrate += rank.modeled().since(&t0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::{seed_particles, FlowConfig};
    use crate::sequential::SequentialDsmc;
    use mpsim::{run, MachineConfig};

    fn merged_fingerprint(results: &[DsmcStats]) -> Vec<(usize, Vec<u64>)> {
        let mut all: Vec<(usize, Vec<u64>)> =
            results.iter().flat_map(|s| s.fingerprint.clone()).collect();
        all.sort_unstable();
        all
    }

    fn run_config(
        nprocs: usize,
        grid: CellGrid,
        nparticles: usize,
        flow: FlowConfig,
        config: DsmcConfig,
    ) -> Vec<DsmcStats> {
        run(MachineConfig::new(nprocs), move |rank| {
            let particles = seed_particles(&grid, nparticles, &flow);
            run_parallel(rank, &grid, &particles, &config)
        })
        .results
    }

    fn sequential_fingerprint(
        grid: CellGrid,
        nparticles: usize,
        flow: FlowConfig,
        nsteps: usize,
        dt: f64,
        seed: u64,
    ) -> Vec<(usize, Vec<u64>)> {
        let particles = seed_particles(&grid, nparticles, &flow);
        let mut sim = SequentialDsmc::new(grid, particles, dt, seed);
        sim.run(nsteps);
        let mut fp = sim.fingerprint();
        fp.sort_unstable();
        fp
    }

    #[test]
    fn lightweight_parallel_matches_sequential() {
        let grid = CellGrid::new_2d(8, 8);
        let flow = FlowConfig::directional(21);
        let config = DsmcConfig::lightweight(12, 21);
        let results = run_config(4, grid, 600, flow, config.clone());
        let total: usize = results.iter().map(|s| s.final_particle_count).sum();
        assert_eq!(total, 600);
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 600, flow, 12, config.dt, 21);
        assert_eq!(par, seq);
    }

    #[test]
    fn regular_move_matches_sequential_too() {
        let grid = CellGrid::new_2d(6, 6);
        let flow = FlowConfig::uniform(5);
        let config = DsmcConfig {
            nsteps: 10,
            dt: 0.4,
            move_mode: MoveMode::Regular,
            remap: RemapStrategy::Static,
            remap_interval: 40,
            policy: None,
            monitor_group: None,
            seed: 5,
        };
        let results = run_config(3, grid, 400, flow, config.clone());
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 400, flow, 10, config.dt, 5);
        assert_eq!(par, seq);
    }

    #[test]
    fn remapping_with_chain_partitioner_preserves_the_simulation() {
        let grid = CellGrid::new_2d(8, 8);
        let flow = FlowConfig::directional(33);
        let config = DsmcConfig {
            nsteps: 15,
            dt: 0.4,
            move_mode: MoveMode::Lightweight,
            remap: RemapStrategy::Chain,
            remap_interval: 5,
            policy: None,
            monitor_group: None,
            seed: 33,
        };
        let results = run_config(4, grid, 500, flow, config.clone());
        assert!(results.iter().all(|s| s.remaps == 2));
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 500, flow, 15, config.dt, 33);
        assert_eq!(par, seq);
    }

    #[test]
    fn remapping_with_rcb_preserves_the_simulation() {
        let grid = CellGrid::new_3d(4, 4, 4);
        let flow = FlowConfig::directional(44);
        let config = DsmcConfig {
            nsteps: 12,
            dt: 0.3,
            move_mode: MoveMode::Lightweight,
            remap: RemapStrategy::RecursiveBisection,
            remap_interval: 4,
            policy: None,
            monitor_group: None,
            seed: 44,
        };
        let results = run_config(4, grid, 600, flow, config.clone());
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 600, flow, 12, config.dt, 44);
        assert_eq!(par, seq);
    }

    #[test]
    fn lightweight_move_is_cheaper_than_regular() {
        // Table 4's claim, at unit-test scale: same simulation, the light-weight MOVE
        // spends less modeled time on preprocessing + transport.
        let grid = CellGrid::new_2d(12, 12);
        let flow = FlowConfig::uniform(9);
        let time_of = |mode: MoveMode| -> f64 {
            let config = DsmcConfig {
                nsteps: 10,
                dt: 0.4,
                move_mode: mode,
                remap: RemapStrategy::Static,
                remap_interval: 40,
                policy: None,
                monitor_group: None,
                seed: 9,
            };
            let results = run_config(4, grid, 1_000, flow, config);
            results
                .iter()
                .map(|s| (s.phases.move_preprocess + s.phases.move_data).total_us())
                .fold(0.0, f64::max)
        };
        let light = time_of(MoveMode::Lightweight);
        let regular = time_of(MoveMode::Regular);
        assert!(
            light < regular,
            "light-weight MOVE should be cheaper (light={light:.1}us, regular={regular:.1}us)"
        );
    }

    #[test]
    fn remapping_improves_load_balance_for_directional_flow() {
        let grid = CellGrid::new_2d(16, 8);
        let flow = FlowConfig::directional(55);
        let imbalance_of = |remap: RemapStrategy| -> f64 {
            let config = DsmcConfig {
                nsteps: 30,
                dt: 0.5,
                move_mode: MoveMode::Lightweight,
                remap,
                remap_interval: 10,
                policy: None,
                monitor_group: None,
                seed: 55,
            };
            let results = run_config(4, grid, 2_000, flow, config);
            let collide_times: Vec<f64> = results
                .iter()
                .map(|s| s.phases.collide.compute_us)
                .collect();
            chaos::load_balance_index(&collide_times)
        };
        let static_lb = imbalance_of(RemapStrategy::Static);
        let chain_lb = imbalance_of(RemapStrategy::Chain);
        assert!(
            chain_lb < static_lb,
            "chain remapping should improve balance (static={static_lb:.2}, chain={chain_lb:.2})"
        );
    }

    #[test]
    fn remap_interval_zero_means_never() {
        // Regression: `step % config.remap_interval` panicked on a zero interval.  The
        // controller treats 0 as "never remap": the run completes, remaps nothing, and
        // still matches the sequential reference.
        let grid = CellGrid::new_2d(8, 8);
        let flow = FlowConfig::directional(17);
        let config = DsmcConfig {
            nsteps: 8,
            dt: 0.4,
            move_mode: MoveMode::Lightweight,
            remap: RemapStrategy::Chain,
            remap_interval: 0,
            policy: None,
            monitor_group: None,
            seed: 17,
        };
        let results = run_config(4, grid, 400, flow, config.clone());
        assert!(results.iter().all(|s| s.remaps == 0));
        // The default cadence decides without measuring: no trajectory, no monitor cost.
        assert!(results.iter().all(|s| s.lb_trajectory.is_empty()));
        assert!(results.iter().all(|s| s.phases.monitor.total_us() == 0.0));
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 400, flow, 8, config.dt, 17);
        assert_eq!(par, seq);
    }

    #[test]
    fn threshold_policy_remaps_and_preserves_the_simulation() {
        let grid = CellGrid::new_2d(12, 8);
        let flow = FlowConfig::directional(61);
        let config = DsmcConfig {
            nsteps: 20,
            dt: 0.5,
            move_mode: MoveMode::Lightweight,
            remap: RemapStrategy::Chain,
            remap_interval: 40,
            policy: Some(chaos::adapt::RemapPolicy::Threshold {
                lb_index: 1.2,
                hysteresis: 0.05,
                patience: 0,
            }),
            monitor_group: None,
            seed: 61,
        };
        let results = run_config(4, grid, 1_500, flow, config.clone());
        // The directional flow piles molecules downstream, so the threshold must fire at
        // least once — and every rank must agree on when.
        let remaps: Vec<usize> = results.iter().map(|s| s.remaps).collect();
        assert!(remaps[0] > 0, "threshold policy never fired");
        assert!(remaps.iter().all(|&r| r == remaps[0]));
        // The trajectory is replicated: identical on every rank, one entry per step.
        for s in &results {
            assert_eq!(s.lb_trajectory, results[0].lb_trajectory);
            assert_eq!(s.lb_trajectory.len(), 20);
            assert!(s
                .lb_trajectory
                .iter()
                .all(|lb| lb.is_finite() && *lb >= 1.0));
        }
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 1_500, flow, 20, config.dt, 61);
        assert_eq!(par, seq);
    }

    #[test]
    fn cost_benefit_policy_preserves_the_simulation() {
        let grid = CellGrid::new_2d(12, 8);
        let flow = FlowConfig::directional(62);
        let config = DsmcConfig {
            nsteps: 20,
            dt: 0.5,
            move_mode: MoveMode::Lightweight,
            remap: RemapStrategy::Chain,
            remap_interval: 40,
            policy: Some(chaos::adapt::RemapPolicy::CostBenefit {
                assumed_cost_us: 500.0,
            }),
            monitor_group: None,
            seed: 62,
        };
        let results = run_config(4, grid, 1_500, flow, config.clone());
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 1_500, flow, 20, config.dt, 62);
        assert_eq!(par, seq);
    }

    #[test]
    fn static_runs_skip_the_monitor_entirely() {
        let grid = CellGrid::new_2d(8, 8);
        let flow = FlowConfig::uniform(3);
        let config = DsmcConfig::lightweight(6, 3);
        let results = run_config(2, grid, 300, flow, config);
        for s in &results {
            assert!(s.lb_trajectory.is_empty());
            assert_eq!(s.phases.monitor.total_us(), 0.0);
        }
    }

    #[test]
    fn patched_move_matches_sequential() {
        let grid = CellGrid::new_2d(8, 8);
        let flow = FlowConfig::directional(73);
        let config = DsmcConfig {
            nsteps: 12,
            dt: 0.4,
            move_mode: MoveMode::Patched {
                rebuild_every_step: false,
            },
            remap: RemapStrategy::Static,
            remap_interval: 40,
            policy: None,
            monitor_group: None,
            seed: 73,
        };
        let results = run_config(4, grid, 600, flow, config.clone());
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 600, flow, 12, config.dt, 73);
        assert_eq!(par, seq);
        // Steady state: one initial build, every later step a patch.
        for s in &results {
            assert_eq!(s.schedule_upkeep.builds, 1);
            assert_eq!(s.schedule_upkeep.patches, 11);
        }
    }

    #[test]
    fn patched_upkeep_choice_does_not_change_the_physics_or_the_data_path() {
        // The on-vs-off equivalence the issue pins: whether the maintained schedule is
        // patched forward or rebuilt every step, the fingerprints AND the MOVE data-path
        // wire totals must be identical — only the upkeep counters may differ.
        let grid = CellGrid::new_2d(10, 8);
        let flow = FlowConfig::directional(74);
        let run_mode = |rebuild_every_step: bool| -> Vec<DsmcStats> {
            let config = DsmcConfig {
                nsteps: 14,
                dt: 0.4,
                move_mode: MoveMode::Patched { rebuild_every_step },
                remap: RemapStrategy::Static,
                remap_interval: 40,
                policy: None,
                monitor_group: None,
                seed: 74,
            };
            run_config(4, grid, 800, flow, config)
        };
        let patched = run_mode(false);
        let rebuilt = run_mode(true);
        assert_eq!(merged_fingerprint(&patched), merged_fingerprint(&rebuilt));
        for (p, r) in patched.iter().zip(&rebuilt) {
            assert_eq!(p.move_data_exchange, r.move_data_exchange);
            assert_eq!(p.migrations, r.migrations);
            assert_eq!(r.schedule_upkeep.builds, 14);
            assert_eq!(r.schedule_upkeep.patches, 0);
            assert_eq!(p.schedule_upkeep.builds, 1);
            assert_eq!(p.schedule_upkeep.patches, 13);
        }
        // Something actually crossed the wire, or the equivalence is vacuous.
        assert!(patched.iter().any(|s| s.move_data_exchange.msgs_sent > 0));
    }

    #[test]
    fn patched_move_survives_remapping() {
        // A remap invalidates every cached translation; the epoch bump must flow through
        // the schedule key so the next patch ships a full replacement — and the
        // simulation must still match the sequential reference.
        let grid = CellGrid::new_2d(8, 8);
        let flow = FlowConfig::directional(75);
        let config = DsmcConfig {
            nsteps: 15,
            dt: 0.4,
            move_mode: MoveMode::Patched {
                rebuild_every_step: false,
            },
            remap: RemapStrategy::Chain,
            remap_interval: 5,
            policy: None,
            monitor_group: None,
            seed: 75,
        };
        let results = run_config(4, grid, 500, flow, config.clone());
        assert!(results.iter().all(|s| s.remaps == 2));
        let par = merged_fingerprint(&results);
        let seq = sequential_fingerprint(grid, 500, flow, 15, config.dt, 75);
        assert_eq!(par, seq);
        // Remaps do not force rebuilds: the full replacement rides the patch path.
        for s in &results {
            assert_eq!(s.schedule_upkeep.builds, 1);
            assert_eq!(s.schedule_upkeep.patches, 14);
        }
    }

    #[test]
    fn migrations_are_counted() {
        let grid = CellGrid::new_2d(8, 8);
        let flow = FlowConfig::directional(2);
        let config = DsmcConfig::lightweight(8, 2);
        let results = run_config(2, grid, 300, flow, config);
        let migrations: usize = results.iter().map(|s| s.migrations).sum();
        assert!(
            migrations > 0,
            "directional flow must push molecules across ranks"
        );
        let collisions: usize = results.iter().map(|s| s.collisions).sum();
        assert!(collisions > 0);
    }
}
