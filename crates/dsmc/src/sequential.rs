//! Sequential DSMC reference implementation: the correctness oracle for the parallel code
//! and the "Sequential Code" column of Table 5.

use crate::collide::collide_cell;
use crate::grid::CellGrid;
use crate::particles::{advance, Particle};

/// Sequential DSMC simulation state: every cell's molecule list in one address space.
pub struct SequentialDsmc {
    /// The cell grid.
    pub grid: CellGrid,
    /// Per-cell molecule lists.
    pub cells: Vec<Vec<Particle>>,
    /// Time-step length.
    pub dt: f64,
    /// Collision RNG seed.
    pub seed: u64,
    steps_taken: usize,
    /// Total collision pairs processed (the work measure).
    pub collisions: usize,
    /// Total number of cell-to-cell moves performed.
    pub migrations: usize,
}

impl SequentialDsmc {
    /// Create a simulation from an initial particle set.
    pub fn new(grid: CellGrid, particles: Vec<Particle>, dt: f64, seed: u64) -> Self {
        let mut cells = vec![Vec::new(); grid.ncells()];
        for p in particles {
            cells[grid.cell_of_position(p.pos)].push(p);
        }
        Self {
            grid,
            cells,
            dt,
            seed,
            steps_taken: 0,
            collisions: 0,
            migrations: 0,
        }
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Total number of molecules currently in the simulation.
    pub fn total_particles(&self) -> usize {
        self.cells.iter().map(Vec::len).sum()
    }

    /// Molecule count per cell (the per-cell workload the partitioners consume).
    pub fn cell_counts(&self) -> Vec<usize> {
        self.cells.iter().map(Vec::len).collect()
    }

    /// Advance one time step: collide within cells, then move molecules and re-bin them
    /// (the MOVE phase of Figure 3).
    pub fn step(&mut self) {
        // Collision phase.
        for (cell, particles) in self.cells.iter_mut().enumerate() {
            self.collisions += collide_cell(cell, self.steps_taken, self.seed, particles);
        }
        // Move phase.
        let mut moved: Vec<(usize, Particle)> = Vec::new();
        for (cell, particles) in self.cells.iter_mut().enumerate() {
            let mut keep = Vec::with_capacity(particles.len());
            for mut p in particles.drain(..) {
                advance(&mut p, &self.grid, self.dt);
                let new_cell = self.grid.cell_of_position(p.pos);
                if new_cell == cell {
                    keep.push(p);
                } else {
                    moved.push((new_cell, p));
                }
            }
            *particles = keep;
        }
        self.migrations += moved.len();
        for (cell, p) in moved {
            self.cells[cell].push(p);
        }
        self.steps_taken += 1;
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// A canonical (cell id, sorted molecule ids) fingerprint used to compare against the
    /// parallel implementation.
    pub fn fingerprint(&self) -> Vec<(usize, Vec<u64>)> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_empty())
            .map(|(cell, c)| {
                let mut ids: Vec<u64> = c.iter().map(|p| p.id).collect();
                ids.sort_unstable();
                (cell, ids)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::particles::{seed_particles, FlowConfig};

    fn sim(n: usize, seed: u64) -> SequentialDsmc {
        let grid = CellGrid::new_2d(8, 8);
        let particles = seed_particles(&grid, n, &FlowConfig::directional(seed));
        SequentialDsmc::new(grid, particles, 0.4, seed)
    }

    #[test]
    fn particles_are_conserved() {
        let mut s = sim(400, 3);
        assert_eq!(s.total_particles(), 400);
        s.run(20);
        assert_eq!(s.total_particles(), 400);
        assert_eq!(s.steps_taken(), 20);
        assert!(s.migrations > 0, "molecules should move between cells");
        assert!(s.collisions > 0);
    }

    #[test]
    fn particles_always_live_in_the_cell_matching_their_position() {
        let mut s = sim(300, 5);
        s.run(15);
        for (cell, particles) in s.cells.iter().enumerate() {
            for p in particles {
                assert_eq!(s.grid.cell_of_position(p.pos), cell);
            }
        }
    }

    #[test]
    fn directional_flow_skews_the_density_over_time() {
        let mut s = sim(2_000, 9);
        let half = s.grid.nx / 2;
        let right_count = |s: &SequentialDsmc| -> usize {
            s.cells
                .iter()
                .enumerate()
                .filter(|(c, _)| s.grid.cell_coords(*c).0 >= half)
                .map(|(_, v)| v.len())
                .sum()
        };
        let before = right_count(&s);
        s.run(30);
        let after = right_count(&s);
        assert!(
            after > before,
            "density should pile up downstream: before={before} after={after}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = sim(250, 17);
        let mut b = sim(250, 17);
        a.run(10);
        b.run(10);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.cells, b.cells);
    }

    #[test]
    fn fingerprint_lists_only_non_empty_cells() {
        let s = sim(10, 1);
        let fp = s.fingerprint();
        assert!(fp.iter().all(|(_, ids)| !ids.is_empty()));
        let total: usize = fp.iter().map(|(_, ids)| ids.len()).sum();
        assert_eq!(total, 10);
    }
}
