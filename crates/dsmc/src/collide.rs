//! The per-cell collision phase.
//!
//! DSMC molecules interact only with molecules in the same cell.  The physics here is a
//! deliberately simple stand-in (randomly paired elastic exchanges), but two properties of
//! the real code are preserved because the parallelisation depends on them:
//!
//! * the computational cost of a cell is proportional to its molecule count — this is what
//!   makes the drifting density profile translate into load imbalance;
//! * the outcome is **deterministic given the cell id, the step number and the molecule
//!   set** (molecules are sorted by id and the pairing RNG is seeded from cell and step),
//!   so the sequential and parallel codes produce bit-identical trajectories no matter
//!   which processor owns the cell or in which order migrating molecules arrived.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::particles::Particle;

/// Perform the collision phase for one cell.  Returns the number of collision pairs
/// processed (the work measure).
pub fn collide_cell(cell_id: usize, step: usize, seed: u64, particles: &mut [Particle]) -> usize {
    if particles.len() < 2 {
        return 0;
    }
    // Deterministic ordering regardless of arrival order.
    particles.sort_unstable_by_key(|p| p.id);
    // Deterministic pairing.
    let mut order: Vec<usize> = (0..particles.len()).collect();
    let mut rng = StdRng::seed_from_u64(
        seed ^ (cell_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (step as u64) << 32,
    );
    order.shuffle(&mut rng);
    let pairs = particles.len() / 2;
    for p in 0..pairs {
        let a = order[2 * p];
        let b = order[2 * p + 1];
        // Elastic equal-mass exchange: swap velocities (conserves momentum and energy).
        let va = particles[a].vel;
        particles[a].vel = particles[b].vel;
        particles[b].vel = va;
    }
    pairs
}

/// Total momentum of a particle set (used by conservation tests).
pub fn total_momentum(particles: &[Particle]) -> [f64; 3] {
    let mut m = [0.0; 3];
    for p in particles {
        for (mk, vk) in m.iter_mut().zip(&p.vel) {
            *mk += vk;
        }
    }
    m
}

/// Total kinetic energy of a particle set (unit mass).
pub fn total_energy(particles: &[Particle]) -> f64 {
    particles
        .iter()
        .map(|p| 0.5 * (p.vel[0] * p.vel[0] + p.vel[1] * p.vel[1] + p.vel[2] * p.vel[2]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<Particle> {
        (0..n)
            .map(|i| Particle {
                pos: [i as f64, 0.0, 0.0],
                vel: [i as f64 * 0.1 - 1.0, (i % 3) as f64, -(i as f64) * 0.05],
                id: i as u64,
            })
            .collect()
    }

    #[test]
    fn collisions_conserve_momentum_and_energy() {
        let mut particles = sample(17);
        let m0 = total_momentum(&particles);
        let e0 = total_energy(&particles);
        let pairs = collide_cell(3, 7, 42, &mut particles);
        assert_eq!(pairs, 8);
        let m1 = total_momentum(&particles);
        let e1 = total_energy(&particles);
        for k in 0..3 {
            assert!((m0[k] - m1[k]).abs() < 1e-12);
        }
        assert!((e0 - e1).abs() < 1e-12);
    }

    #[test]
    fn outcome_is_independent_of_input_order() {
        let mut a = sample(12);
        let mut b = sample(12);
        b.reverse(); // simulate a different arrival order after migration
        collide_cell(5, 2, 9, &mut a);
        collide_cell(5, 2, 9, &mut b);
        // After the phase both are sorted by id and must be identical.
        assert_eq!(a, b);
    }

    #[test]
    fn different_cells_or_steps_collide_differently() {
        let base = sample(10);
        let mut a = base.clone();
        let mut b = base.clone();
        let mut c = base.clone();
        collide_cell(1, 1, 7, &mut a);
        collide_cell(2, 1, 7, &mut b);
        collide_cell(1, 2, 7, &mut c);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_cells_are_no_ops() {
        let mut empty: Vec<Particle> = Vec::new();
        assert_eq!(collide_cell(0, 0, 0, &mut empty), 0);
        let mut single = sample(1);
        assert_eq!(collide_cell(0, 0, 0, &mut single), 0);
        assert_eq!(single, sample(1));
    }
}
