//! The cartesian cell grid DSMC lays over its domain (2-D or 3-D).

/// A cartesian grid of cells covering the rectangular domain `[0, lx) × [0, ly) × [0, lz)`.
/// A 2-D problem uses `nz = 1` (and any `lz > 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellGrid {
    /// Number of cells along x.
    pub nx: usize,
    /// Number of cells along y.
    pub ny: usize,
    /// Number of cells along z (1 for 2-D problems).
    pub nz: usize,
    /// Domain extent along x.
    pub lx: f64,
    /// Domain extent along y.
    pub ly: f64,
    /// Domain extent along z.
    pub lz: f64,
}

impl CellGrid {
    /// A 2-D grid of `nx × ny` cells over a unit-cell-sized domain.
    pub fn new_2d(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0);
        Self {
            nx,
            ny,
            nz: 1,
            lx: nx as f64,
            ly: ny as f64,
            lz: 1.0,
        }
    }

    /// A 3-D grid of `nx × ny × nz` cells over a unit-cell-sized domain.
    pub fn new_3d(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Self {
            nx,
            ny,
            nz,
            lx: nx as f64,
            ly: ny as f64,
            lz: nz as f64,
        }
    }

    /// Total number of cells.
    pub fn ncells(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True if the grid is two-dimensional.
    pub fn is_2d(&self) -> bool {
        self.nz == 1
    }

    /// Linearised index of cell `(i, j, k)`.
    pub fn cell_index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.nx && j < self.ny && k < self.nz);
        i + self.nx * (j + self.ny * k)
    }

    /// The `(i, j, k)` coordinates of a linearised cell index.
    pub fn cell_coords(&self, cell: usize) -> (usize, usize, usize) {
        debug_assert!(cell < self.ncells());
        let i = cell % self.nx;
        let j = (cell / self.nx) % self.ny;
        let k = cell / (self.nx * self.ny);
        (i, j, k)
    }

    /// The cell containing a position.  Positions outside the domain are clamped to the
    /// boundary cell (the movers keep positions inside the domain, so clamping only papers
    /// over floating-point round-off at the very edge).
    pub fn cell_of_position(&self, pos: [f64; 3]) -> usize {
        let ix = ((pos[0] / self.lx * self.nx as f64) as isize).clamp(0, self.nx as isize - 1);
        let iy = ((pos[1] / self.ly * self.ny as f64) as isize).clamp(0, self.ny as isize - 1);
        let iz = ((pos[2] / self.lz * self.nz as f64) as isize).clamp(0, self.nz as isize - 1);
        self.cell_index(ix as usize, iy as usize, iz as usize)
    }

    /// Geometric centre of a cell (used as the partitioning coordinate of the cell).
    pub fn cell_center(&self, cell: usize) -> [f64; 3] {
        let (i, j, k) = self.cell_coords(cell);
        [
            (i as f64 + 0.5) * self.lx / self.nx as f64,
            (j as f64 + 0.5) * self.ly / self.ny as f64,
            (k as f64 + 0.5) * self.lz / self.nz as f64,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_and_coords_round_trip() {
        let g = CellGrid::new_3d(4, 5, 6);
        assert_eq!(g.ncells(), 120);
        for cell in 0..g.ncells() {
            let (i, j, k) = g.cell_coords(cell);
            assert_eq!(g.cell_index(i, j, k), cell);
        }
    }

    #[test]
    fn two_dimensional_grid_has_one_z_layer() {
        let g = CellGrid::new_2d(48, 48);
        assert!(g.is_2d());
        assert_eq!(g.ncells(), 2304);
        assert_eq!(g.cell_coords(48 * 3 + 7), (7, 3, 0));
    }

    #[test]
    fn positions_map_to_their_cells() {
        let g = CellGrid::new_2d(10, 10);
        assert_eq!(g.cell_of_position([0.5, 0.5, 0.5]), 0);
        assert_eq!(g.cell_of_position([1.5, 0.5, 0.0]), 1);
        assert_eq!(g.cell_of_position([9.99, 9.99, 0.0]), 99);
        // Clamping at (and slightly beyond) the boundary.
        assert_eq!(g.cell_of_position([10.0, 0.0, 0.0]), 9);
        assert_eq!(g.cell_of_position([-0.1, 0.0, 0.0]), 0);
    }

    #[test]
    fn cell_centers_lie_inside_their_cells() {
        let g = CellGrid::new_3d(3, 4, 5);
        for cell in 0..g.ncells() {
            let c = g.cell_center(cell);
            assert_eq!(g.cell_of_position(c), cell);
        }
    }
}
