//! Instrumented cells and protocol objects: the model-checker instantiations of the
//! `mpsim::proto` sync-layer traits.
//!
//! A [`Cell`] is a handle to one [`Exec`] location; it implements
//! [`proto::UsizeCell`], [`proto::U64Cell`], and [`proto::BoolCell`], so the *same*
//! protocol step functions the production transport runs
//! ([`proto::ring_try_push`], [`proto::bell_check`], [`proto::window_publish`], …)
//! execute here against the exploring memory model.  [`MRing`], [`MBell`], and
//! [`MWindow`] mirror the production `Spsc`, `Doorbell`, and `DirectWindow`
//! structures one field per location; ring-slot and window-payload accesses are
//! modeled as `Relaxed` accesses to dedicated locations, so the checker observes
//! exactly which counter/tag orderings make the data visible.

use std::rc::Rc;
use std::sync::atomic::Ordering;

use mpsim::proto::{self, BellOps, RingOps, WindowOps};

use crate::engine::{CvId, Exec, Loc, MutexId};

/// A handle to one modeled atomic location.
pub struct Cell {
    exec: Rc<Exec>,
    loc: Loc,
}

impl Cell {
    /// Register a fresh location named `name` with initial value `init`.
    pub fn new(exec: &Rc<Exec>, name: &'static str, init: u64) -> Cell {
        Cell {
            exec: Rc::clone(exec),
            loc: exec.new_loc(name, init),
        }
    }

    /// The underlying location id (for oracle reads).
    pub fn loc(&self) -> Loc {
        self.loc
    }
}

impl proto::UsizeCell for Cell {
    fn load(&self, ord: Ordering) -> usize {
        self.exec.load(self.loc, ord) as usize
    }
    fn store(&self, v: usize, ord: Ordering) {
        self.exec.store(self.loc, v as u64, ord);
    }
    fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
        self.exec.fetch_sub(self.loc, v as u64, ord) as usize
    }
}

impl proto::U64Cell for Cell {
    fn load(&self, ord: Ordering) -> u64 {
        self.exec.load(self.loc, ord)
    }
    fn store(&self, v: u64, ord: Ordering) {
        self.exec.store(self.loc, v, ord);
    }
}

impl proto::BoolCell for Cell {
    fn load(&self, ord: Ordering) -> bool {
        self.exec.load(self.loc, ord) != 0
    }
    fn store(&self, v: bool, ord: Ordering) {
        self.exec.store(self.loc, u64::from(v), ord);
    }
}

/// Value a ring slot holds before any push: popping it is an uninitialised read.
pub const SLOT_POISON: u64 = u64::MAX;

/// The model instantiation of the production `Spsc` ring: head/tail counters plus
/// one location per slot, all driven through [`proto::ring_try_push`] /
/// [`proto::ring_try_pop`].
pub struct MRing {
    exec: Rc<Exec>,
    head: Cell,
    tail: Cell,
    slots: Vec<Loc>,
    /// When set, the tail publication is weakened to `Relaxed` — the seeded
    /// ordering bug the checker must catch.
    pub relaxed_publish: bool,
}

impl MRing {
    /// Build a ring of `capacity` slots.
    pub fn new(exec: &Rc<Exec>, capacity: usize) -> MRing {
        MRing {
            exec: Rc::clone(exec),
            head: Cell::new(exec, "ring.head", 0),
            tail: Cell::new(exec, "ring.tail", 0),
            slots: (0..capacity)
                .map(|_| exec.new_loc("ring.slot", SLOT_POISON))
                .collect(),
            relaxed_publish: false,
        }
    }
}

impl RingOps for MRing {
    type Item = u64;
    type Ctr = Cell;

    fn capacity(&self) -> usize {
        self.slots.len()
    }
    fn head(&self) -> &Cell {
        &self.head
    }
    fn tail(&self) -> &Cell {
        &self.tail
    }
    fn slot_write(&self, slot: usize, item: u64) {
        self.exec.store(self.slots[slot], item, Ordering::Relaxed);
    }
    fn slot_read(&self, slot: usize) -> u64 {
        self.exec.load(self.slots[slot], Ordering::Relaxed)
    }
}

/// Push through the shared protocol step, or through the seeded-bug variant that
/// publishes `tail` with a `Relaxed` store (everything else identical).
pub fn ring_push(ring: &MRing, item: u64) -> Result<(), u64> {
    if !ring.relaxed_publish {
        return proto::ring_try_push(ring, item);
    }
    // Seeded bug: identical steps to `proto::ring_try_push`, but the publication
    // store is demoted from Release to Relaxed — the slot write is no longer
    // ordered before the consumer's acquire of `tail`.
    use proto::UsizeCell as _;
    let t = ring.tail.load(Ordering::Relaxed);
    let h = ring.head.load(Ordering::Acquire);
    if t - h >= ring.capacity() {
        return Err(item);
    }
    ring.slot_write(t % ring.capacity(), item);
    ring.tail.store(t + 1, Ordering::Relaxed);
    Ok(())
}

/// The model instantiation of the production `Doorbell`: the lock-free announcement
/// flag (driven through [`proto::bell_check`] / [`proto::bell_announce`] /
/// [`proto::bell_retract`]) plus a modeled mutex and condvar.
pub struct MBell {
    exec: Rc<Exec>,
    sleeping: Cell,
    /// The doorbell mutex.
    pub mutex: MutexId,
    /// The doorbell condvar.
    pub condvar: CvId,
    /// When set, the producer-side `SeqCst` fence is elided — the seeded
    /// missing-fence bug.
    pub no_fence: bool,
}

impl MBell {
    /// Build a doorbell.
    pub fn new(exec: &Rc<Exec>) -> MBell {
        MBell {
            exec: Rc::clone(exec),
            sleeping: Cell::new(exec, "bell.sleeping", 0),
            mutex: exec.new_mutex(),
            condvar: exec.new_condvar(),
            no_fence: false,
        }
    }
}

impl BellOps for MBell {
    type Flag = Cell;

    fn sleeping(&self) -> &Cell {
        &self.sleeping
    }
    fn fence_seq_cst(&self) {
        if !self.no_fence {
            self.exec.fence_seq_cst();
        }
    }
}

/// The model instantiation of the production `DirectWindow` control words, plus a
/// modeled payload: `meta` stands for the destination/element-type fields written
/// under [`proto::window_publish`]'s closure, `dst` for the destination region, and
/// `freed` is the oracle flag the receiver raises after retiring and freeing.
pub struct MWindow {
    exec: Rc<Exec>,
    tag: Cell,
    pending: Cell,
    /// Stands for `dst_ptr`/`elem`/permutation slots: written in `write_fields`,
    /// read by senders after a claim.
    pub meta: Loc,
    /// One destination slot per sender.
    pub dst: Vec<Loc>,
    /// Oracle: nonzero once the receiver has retired the window and freed `dst`.
    pub freed: Loc,
}

impl MWindow {
    /// Build a window with one destination slot per sender.
    pub fn new(exec: &Rc<Exec>, senders: usize) -> MWindow {
        MWindow {
            exec: Rc::clone(exec),
            tag: Cell::new(exec, "window.tag", 0),
            pending: Cell::new(exec, "window.pending", 0),
            meta: exec.new_loc("window.meta", 0),
            dst: (0..senders)
                .map(|_| exec.new_loc("window.dst", 0))
                .collect(),
            freed: exec.new_loc("window.freed", 0),
        }
    }

    /// The exec this window registered against.
    pub fn exec(&self) -> &Rc<Exec> {
        &self.exec
    }
}

impl WindowOps for MWindow {
    type Tag = Cell;
    type Ctr = Cell;

    fn tag(&self) -> &Cell {
        &self.tag
    }
    fn pending(&self) -> &Cell {
        &self.pending
    }
}
