//! Exhaustive model checking for the `mpsim` shared-memory transport protocols.
//!
//! The production transport (`mpsim::shared`) runs three lock-free protocols — the
//! Lamport SPSC ring, the doorbell sleep/publish/rescan handshake, and the
//! direct-delivery window publish/claim/retire lifecycle.  Their step logic lives in
//! `mpsim::proto` as small functions generic over a sync layer; production binds
//! them to `std::sync::atomic`, this crate binds them to an instrumented memory
//! model and explores **all** interleavings at bounded sizes.
//!
//! The pieces:
//!
//! - [`engine`] — the memory model (per-location store histories, per-thread views,
//!   release/acquire view joins, a deliberately weak `SeqCst` approximation) and the
//!   replay-tape DFS scheduler with partial-order pruning (yield pruning, forced
//!   fresh reads, store GC, state memoization).
//! - [`model`] — [`model::Cell`] implementing the `mpsim::proto` cell traits over an
//!   [`engine::Exec`], plus `MRing`/`MBell`/`MWindow` mirroring the production
//!   structures one field per modeled location.
//! - [`scenarios`] — the protocol roles as explicit state machines and the
//!   `check_*` entry points, each with seeded-bug variants the checker must catch.
//!
//! Checked properties: per-pair FIFO with no lost/duplicated/uninitialised items
//! (ring), no lost wakeup (doorbell), publication and drain visibility plus no
//! ABA/use-after-free on the abort path (window), and termination of every
//! interleaving (deadlock and livelock detection in the scheduler).

#![deny(missing_docs)]

pub mod engine;
pub mod model;
pub mod scenarios;

pub use engine::{explore, Exec, ModelThread, Report, Step, Violation};
pub use scenarios::{
    check_doorbell, check_ring, check_ring_relaxed_publish_bug, check_window, check_window_abort,
    check_window_early_decrement_bug, DoorbellVariant,
};

#[cfg(test)]
mod tests {
    use super::*;

    // -- ring ---------------------------------------------------------------

    #[test]
    fn ring_capacity2_clean() {
        check_ring(2, 3).assert_clean("spsc ring (capacity 2, 3 items)");
    }

    #[test]
    fn ring_capacity3_clean() {
        check_ring(3, 4).assert_clean("spsc ring (capacity 3, 4 items)");
    }

    #[test]
    fn ring_relaxed_publish_caught() {
        check_ring_relaxed_publish_bug(2, 2)
            .assert_caught("relaxed tail publish", "uninitialised slot read");
    }

    // -- doorbell -----------------------------------------------------------

    #[test]
    fn doorbell_clean() {
        check_doorbell(DoorbellVariant::Correct).assert_clean("doorbell handshake");
    }

    #[test]
    fn doorbell_swapped_announce_caught() {
        check_doorbell(DoorbellVariant::SwappedAnnounce)
            .assert_caught("announce-after-rescan doorbell", "lost wakeup");
    }

    #[test]
    fn doorbell_missing_fence_caught() {
        check_doorbell(DoorbellVariant::MissingFence)
            .assert_caught("fence-elided doorbell", "lost wakeup");
    }

    #[test]
    fn doorbell_check_before_publish_caught() {
        check_doorbell(DoorbellVariant::CheckBeforePublish)
            .assert_caught("check-before-publish doorbell", "lost wakeup");
    }

    // -- window -------------------------------------------------------------

    #[test]
    fn window_single_sender_clean() {
        check_window(1).assert_clean("direct window (1 sender)");
    }

    #[test]
    fn window_two_senders_clean() {
        check_window(2).assert_clean("direct window (2 senders)");
    }

    #[test]
    fn window_early_decrement_caught() {
        // The seeded bug has two observable symptoms (whichever interleaving the DFS
        // reaches first): the freed-destination write (use-after-free) or the
        // receiver draining before the contribution landed (lost data).
        let report = check_window_early_decrement_bug(1);
        let violation = report
            .violation
            .as_ref()
            .expect("early pending decrement: expected a violation, exploration was clean");
        assert!(
            violation.message.contains("use-after-free")
                || violation.message.contains("decrement chain broken"),
            "early pending decrement: unexpected violation {:?}",
            violation.message
        );
    }

    #[test]
    fn window_abort_clean() {
        check_window_abort().assert_clean("window abort path");
    }

    // -- release-lane depth (run via `cargo test -p verify --release -- --ignored`) --

    #[test]
    #[ignore = "deep bound: run in the release-mode CI verify lane"]
    fn ring_capacity4_deep() {
        check_ring(4, 6).assert_clean("spsc ring (capacity 4, 6 items)");
    }

    #[test]
    #[ignore = "deep bound: run in the release-mode CI verify lane"]
    fn window_three_senders_deep() {
        check_window(3).assert_clean("direct window (3 senders)");
    }

    #[test]
    #[ignore = "deep bound: run in the release-mode CI verify lane"]
    fn window_early_decrement_two_senders_deep() {
        let report = check_window_early_decrement_bug(2);
        assert!(
            report.violation.is_some(),
            "early pending decrement (2 senders): expected a violation"
        );
    }
}
