//! Protocol scenarios: each production role (ring producer/consumer, doorbell
//! producer/parker, window receiver/sender) as an explicit state machine whose every
//! action is one `mpsim::proto` step over instrumented cells.
//!
//! Each public `check_*` function exhaustively explores one bounded configuration and
//! returns the engine's [`Report`].  The `*_bug` configurations run the *same*
//! machines with one seeded ordering change — a swapped step order or a weakened
//! ordering — and the tests assert the checker catches each one.

use std::collections::hash_map::DefaultHasher;
use std::hash::Hash;
use std::rc::Rc;

use mpsim::proto;

use crate::engine::{explore, Exec, ModelThread, Report, Step};
use crate::model::{ring_push, MBell, MRing, MWindow, SLOT_POISON};

/// The exchange tag used by window scenarios (anything nonzero).
const TAG: u64 = 7;
/// The sentinel the receiver's `write_fields` closure publishes into `meta`.
const GEN: u64 = 1;

// ---------------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------------

#[derive(Hash)]
enum ProducerPc {
    Push(u64),
    Done,
}

struct RingProducer {
    ring: Rc<MRing>,
    pc: ProducerPc,
    n: u64,
}

impl ModelThread for RingProducer {
    fn step(&mut self, exec: &Exec) -> Step {
        match self.pc {
            ProducerPc::Push(v) => match ring_push(&self.ring, v) {
                Ok(()) => {
                    exec.log(format!("producer: pushed {v}"));
                    if v == self.n {
                        self.pc = ProducerPc::Done;
                        Step::Done
                    } else {
                        self.pc = ProducerPc::Push(v + 1);
                        Step::Ran
                    }
                }
                Err(_) => Step::Yield,
            },
            ProducerPc::Done => Step::Done,
        }
    }

    fn fp(&self, h: &mut DefaultHasher) {
        "ring-producer".hash(h);
        self.pc.hash(h);
    }
}

struct RingConsumer {
    ring: Rc<MRing>,
    expect: u64,
    n: u64,
}

impl ModelThread for RingConsumer {
    fn step(&mut self, exec: &Exec) -> Step {
        match proto::ring_try_pop(&*self.ring) {
            Some(v) => {
                exec.log(format!("consumer: popped {v}"));
                if v == SLOT_POISON {
                    return Step::Fail(
                        "uninitialised slot read: popped a slot before its write was \
                         published"
                            .to_string(),
                    );
                }
                if v != self.expect {
                    return Step::Fail(format!(
                        "FIFO violation: popped {v}, expected {}",
                        self.expect
                    ));
                }
                self.expect += 1;
                if self.expect > self.n {
                    Step::Done
                } else {
                    Step::Ran
                }
            }
            None => Step::Yield,
        }
    }

    fn fp(&self, h: &mut DefaultHasher) {
        "ring-consumer".hash(h);
        self.expect.hash(h);
    }
}

/// Exhaustively check FIFO delivery, no lost or duplicated items, and no
/// uninitialised slot reads for a producer pushing `1..=items` through a ring of
/// `capacity` slots (wrapping when `items > capacity`) against a spinning consumer.
pub fn check_ring(capacity: usize, items: u64) -> Report {
    ring_scenario(capacity, items, false)
}

/// The seeded ordering bug: the producer's `tail` publication is demoted from
/// `Release` to `Relaxed`.  The checker must find the interleaving where the
/// consumer observes the new `tail` but not the slot contents.
pub fn check_ring_relaxed_publish_bug(capacity: usize, items: u64) -> Report {
    ring_scenario(capacity, items, true)
}

fn ring_scenario(capacity: usize, items: u64, relaxed_publish: bool) -> Report {
    explore(move |exec: &Rc<Exec>| {
        let mut ring = MRing::new(exec, capacity);
        ring.relaxed_publish = relaxed_publish;
        let ring = Rc::new(ring);
        vec![
            Box::new(RingProducer {
                ring: Rc::clone(&ring),
                pc: ProducerPc::Push(1),
                n: items,
            }) as Box<dyn ModelThread>,
            Box::new(RingConsumer {
                ring,
                expect: 1,
                n: items,
            }),
        ]
    })
}

// ---------------------------------------------------------------------------
// Doorbell
// ---------------------------------------------------------------------------

/// Which ordering bug (if any) to seed into the doorbell scenario.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum DoorbellVariant {
    /// The production protocol: announce, rescan, wait; push, fence, check, notify.
    Correct,
    /// The consumer rescans *before* publishing `sleeping` (the pre-fence order the
    /// issue seeds): a push between rescan and announce is lost.
    SwappedAnnounce,
    /// The producer's `SeqCst` fence between publish and check is elided: the
    /// `sleeping` load may act on a stale `false` while the consumer's rescan may
    /// miss the unpublished push.
    MissingFence,
    /// The producer checks the bell *before* pushing: the consumer can announce and
    /// rescan in the gap, then park forever.
    CheckBeforePublish,
}

#[derive(Hash)]
enum BellProducerPc {
    Push,
    Check,
    Notify,
}

struct BellProducer {
    ring: Rc<MRing>,
    bell: Rc<MBell>,
    variant: DoorbellVariant,
    pc: BellProducerPc,
}

impl ModelThread for BellProducer {
    fn step(&mut self, exec: &Exec) -> Step {
        match self.pc {
            BellProducerPc::Push => match ring_push(&self.ring, 42) {
                Ok(()) => {
                    exec.log("producer: pushed".to_string());
                    if self.variant == DoorbellVariant::CheckBeforePublish {
                        // The check already ran; nothing more to do.
                        Step::Done
                    } else {
                        self.pc = BellProducerPc::Check;
                        Step::Ran
                    }
                }
                Err(_) => Step::Yield,
            },
            BellProducerPc::Check => {
                if proto::bell_check(&*self.bell) {
                    exec.log("producer: bell check -> consumer sleeping".to_string());
                    self.pc = BellProducerPc::Notify;
                    Step::Ran
                } else if self.variant == DoorbellVariant::CheckBeforePublish {
                    exec.log("producer: (buggy) checked before publishing".to_string());
                    self.pc = BellProducerPc::Push;
                    Step::Ran
                } else {
                    exec.log("producer: bell check -> consumer awake".to_string());
                    Step::Done
                }
            }
            BellProducerPc::Notify => {
                if !exec.try_lock(self.bell.mutex) {
                    return Step::Yield;
                }
                exec.notify_one(self.bell.condvar);
                exec.unlock(self.bell.mutex);
                exec.log("producer: notified".to_string());
                if self.variant == DoorbellVariant::CheckBeforePublish {
                    self.pc = BellProducerPc::Push;
                    Step::Ran
                } else {
                    Step::Done
                }
            }
        }
    }

    fn fp(&self, h: &mut DefaultHasher) {
        "bell-producer".hash(h);
        self.pc.hash(h);
    }
}

#[derive(Hash)]
enum BellConsumerPc {
    /// First optimistic sweep (outside the mutex).
    Scan,
    /// Take the mutex; announce first unless the seeded bug swaps the order.
    Lock,
    /// The rescan inside the critical section.
    Rescan,
    /// Seeded-bug order only: announce *after* the rescan came up empty.
    LateAnnounce,
    /// Re-acquire the mutex after a wakeup, retract, and go back to scanning.
    Relock,
}

struct BellConsumer {
    ring: Rc<MRing>,
    bell: Rc<MBell>,
    swapped: bool,
    pc: BellConsumerPc,
}

impl BellConsumer {
    fn take(&mut self, exec: &Exec, v: u64) -> Step {
        exec.log(format!("consumer: received {v}"));
        if v == 42 {
            Step::Done
        } else {
            Step::Fail(format!("consumer received corrupted value {v}"))
        }
    }
}

impl ModelThread for BellConsumer {
    fn step(&mut self, exec: &Exec) -> Step {
        match self.pc {
            BellConsumerPc::Scan => match proto::ring_try_pop(&*self.ring) {
                Some(v) => self.take(exec, v),
                None => {
                    self.pc = BellConsumerPc::Lock;
                    Step::Yield
                }
            },
            BellConsumerPc::Lock => {
                if !exec.try_lock(self.bell.mutex) {
                    return Step::Yield;
                }
                if self.swapped {
                    exec.log("consumer: (buggy) locked, rescanning before announcing".to_string());
                } else {
                    proto::bell_announce(&*self.bell);
                    exec.log("consumer: announced sleep".to_string());
                }
                self.pc = BellConsumerPc::Rescan;
                Step::Ran
            }
            BellConsumerPc::Rescan => match proto::ring_try_pop(&*self.ring) {
                Some(v) => {
                    proto::bell_retract(&*self.bell);
                    exec.unlock(self.bell.mutex);
                    self.take(exec, v)
                }
                None => {
                    if self.swapped {
                        self.pc = BellConsumerPc::LateAnnounce;
                        Step::Ran
                    } else {
                        exec.log("consumer: parking".to_string());
                        self.pc = BellConsumerPc::Relock;
                        exec.unlock(self.bell.mutex);
                        Step::Park(self.bell.condvar)
                    }
                }
            },
            BellConsumerPc::LateAnnounce => {
                proto::bell_announce(&*self.bell);
                exec.log("consumer: (buggy) announced after rescan, parking".to_string());
                self.pc = BellConsumerPc::Relock;
                exec.unlock(self.bell.mutex);
                Step::Park(self.bell.condvar)
            }
            BellConsumerPc::Relock => {
                if !exec.try_lock(self.bell.mutex) {
                    return Step::Yield;
                }
                proto::bell_retract(&*self.bell);
                exec.unlock(self.bell.mutex);
                exec.log("consumer: woke".to_string());
                self.pc = BellConsumerPc::Scan;
                Step::Ran
            }
        }
    }

    fn fp(&self, h: &mut DefaultHasher) {
        "bell-consumer".hash(h);
        self.pc.hash(h);
    }
}

/// Exhaustively check the doorbell protocol for lost wakeups: a producer pushes one
/// message (publish, fence, check, notify) against a consumer that scans, announces,
/// rescans, and parks.  [`DoorbellVariant::Correct`] must have no deadlock in any
/// interleaving; every seeded variant must deadlock in at least one.
pub fn check_doorbell(variant: DoorbellVariant) -> Report {
    explore(move |exec: &Rc<Exec>| {
        let ring = Rc::new(MRing::new(exec, 2));
        let mut bell = MBell::new(exec);
        bell.no_fence = variant == DoorbellVariant::MissingFence;
        let bell = Rc::new(bell);
        let producer_pc = if variant == DoorbellVariant::CheckBeforePublish {
            BellProducerPc::Check
        } else {
            BellProducerPc::Push
        };
        vec![
            Box::new(BellProducer {
                ring: Rc::clone(&ring),
                bell: Rc::clone(&bell),
                variant,
                pc: producer_pc,
            }) as Box<dyn ModelThread>,
            Box::new(BellConsumer {
                ring,
                bell,
                swapped: variant == DoorbellVariant::SwappedAnnounce,
                pc: BellConsumerPc::Scan,
            }),
        ]
    })
}

// ---------------------------------------------------------------------------
// Direct-delivery window
// ---------------------------------------------------------------------------

#[derive(Hash)]
enum ReceiverPc {
    Publish,
    WaitDrain,
    Retire,
    Verify,
}

struct WindowReceiver {
    win: Rc<MWindow>,
    senders: usize,
}

struct WindowReceiverThread {
    recv: WindowReceiver,
    pc: ReceiverPc,
}

impl ModelThread for WindowReceiverThread {
    fn step(&mut self, exec: &Exec) -> Step {
        let win = &self.recv.win;
        match self.pc {
            ReceiverPc::Publish => {
                proto::window_publish(&**win, TAG, self.recv.senders, || {
                    exec.store(win.meta, GEN, std::sync::atomic::Ordering::Relaxed);
                });
                exec.log("receiver: published window".to_string());
                self.pc = ReceiverPc::WaitDrain;
                Step::Ran
            }
            ReceiverPc::WaitDrain => {
                if proto::window_is_drained(&**win) {
                    exec.log("receiver: drained".to_string());
                    self.pc = ReceiverPc::Retire;
                    Step::Ran
                } else {
                    Step::Yield
                }
            }
            ReceiverPc::Retire => {
                proto::window_retire(&**win);
                // Retiring frees the destination region: raise the oracle flag any
                // straggling sender write must observe.
                exec.store(win.freed, 1, std::sync::atomic::Ordering::Relaxed);
                exec.log("receiver: retired and freed".to_string());
                self.pc = ReceiverPc::Verify;
                Step::Ran
            }
            ReceiverPc::Verify => {
                for (i, &slot) in win.dst.iter().enumerate() {
                    let v = exec.load(slot, std::sync::atomic::Ordering::Relaxed);
                    let want = 100 + i as u64;
                    if v != want {
                        return Step::Fail(format!(
                            "window drain did not publish sender {i}'s contribution: \
                             read {v}, expected {want} (decrement chain broken)"
                        ));
                    }
                }
                exec.log("receiver: verified contributions".to_string());
                Step::Done
            }
        }
    }

    fn fp(&self, h: &mut DefaultHasher) {
        "window-receiver".hash(h);
        self.pc.hash(h);
    }
}

#[derive(Hash)]
enum SenderPc {
    Claim,
    Write,
    Deliver,
}

struct WindowSender {
    win: Rc<MWindow>,
    index: usize,
    /// Seeded bug: decrement `pending` *before* writing the contribution, unpinning
    /// the window while the write is still outstanding.
    early_decrement: bool,
    pc: SenderPc,
}

impl WindowSender {
    fn write_dst(&self, exec: &Exec) -> Result<(), Step> {
        if exec.latest(self.win.freed) != 0 {
            return Err(Step::Fail(format!(
                "use-after-free: sender {} wrote through a retired window whose \
                 destination was freed",
                self.index
            )));
        }
        exec.store(
            self.win.dst[self.index],
            100 + self.index as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        exec.log(format!("sender {}: wrote contribution", self.index));
        Ok(())
    }
}

impl ModelThread for WindowSender {
    fn step(&mut self, exec: &Exec) -> Step {
        match self.pc {
            SenderPc::Claim => {
                if !proto::window_try_claim(&*self.win, TAG) {
                    return Step::Yield;
                }
                let meta = exec.load(self.win.meta, std::sync::atomic::Ordering::Relaxed);
                if meta != GEN {
                    return Step::Fail(format!(
                        "sender {} claimed the window but read stale metadata {meta} \
                         (publication ordering broken)",
                        self.index
                    ));
                }
                exec.log(format!("sender {}: claimed window", self.index));
                self.pc = if self.early_decrement {
                    SenderPc::Deliver
                } else {
                    SenderPc::Write
                };
                Step::Ran
            }
            SenderPc::Write => match self.write_dst(exec) {
                Ok(()) => {
                    self.pc = SenderPc::Deliver;
                    Step::Ran
                }
                Err(fail) => fail,
            },
            SenderPc::Deliver => {
                let last = proto::window_contribution_delivered(&*self.win);
                exec.log(format!("sender {}: delivered (last = {last})", self.index));
                if self.early_decrement {
                    // Seeded bug: the write happens only now, after unpinning.
                    self.pc = SenderPc::Write;
                    match self.write_dst(exec) {
                        Ok(()) => Step::Done,
                        Err(fail) => fail,
                    }
                } else {
                    Step::Done
                }
            }
        }
    }

    fn fp(&self, h: &mut DefaultHasher) {
        "window-sender".hash(h);
        self.index.hash(h);
        self.pc.hash(h);
    }
}

/// Exhaustively check the direct-delivery window lifecycle with `senders` direct
/// senders: publication ordering (a claiming sender always sees the window fields),
/// the decrement-chain visibility (a drained receiver sees every contribution), and
/// the pending-counter pinning (no write through a retired window).
pub fn check_window(senders: usize) -> Report {
    window_scenario(senders, false)
}

/// The seeded bug: senders decrement `pending` before writing, unpinning the window;
/// the checker must find the interleaving where the receiver retires and frees the
/// destination while a write is outstanding (ABA/use-after-free).
pub fn check_window_early_decrement_bug(senders: usize) -> Report {
    window_scenario(senders, true)
}

fn window_scenario(senders: usize, early_decrement: bool) -> Report {
    explore(move |exec: &Rc<Exec>| {
        let win = Rc::new(MWindow::new(exec, senders));
        let mut threads: Vec<Box<dyn ModelThread>> = vec![Box::new(WindowReceiverThread {
            recv: WindowReceiver {
                win: Rc::clone(&win),
                senders,
            },
            pc: ReceiverPc::Publish,
        })];
        for index in 0..senders {
            threads.push(Box::new(WindowSender {
                win: Rc::clone(&win),
                index,
                early_decrement,
                pc: SenderPc::Claim,
            }));
        }
        threads
    })
}

// ---------------------------------------------------------------------------
// Window abort (panic-unwind path)
// ---------------------------------------------------------------------------

#[derive(Hash)]
enum AbortReceiverPc {
    Publish,
    AbsorbOrDrain,
    Free,
}

struct AbortReceiver {
    win: Rc<MWindow>,
    ring: Rc<MRing>,
    pc: AbortReceiverPc,
}

impl ModelThread for AbortReceiver {
    fn step(&mut self, exec: &Exec) -> Step {
        match self.pc {
            AbortReceiverPc::Publish => {
                let win = &self.win;
                proto::window_publish(&**win, TAG, 1, || {
                    exec.store(win.meta, GEN, std::sync::atomic::Ordering::Relaxed);
                });
                exec.log("receiver: published, then started unwinding".to_string());
                self.pc = AbortReceiverPc::AbsorbOrDrain;
                Step::Ran
            }
            AbortReceiverPc::AbsorbOrDrain => {
                if proto::window_is_drained(&*self.win) {
                    proto::window_retire(&*self.win);
                    exec.log("receiver: abort retired drained window".to_string());
                    self.pc = AbortReceiverPc::Free;
                    Step::Ran
                } else if let Some(v) = proto::ring_try_pop(&*self.ring) {
                    // A fallback contribution for the aborted exchange: absorb it
                    // (count it delivered, drop the payload unplaced).
                    exec.log(format!("receiver: absorbed fallback {v}"));
                    proto::window_contribution_delivered(&*self.win);
                    Step::Ran
                } else {
                    Step::Yield
                }
            }
            AbortReceiverPc::Free => {
                exec.store(self.win.freed, 1, std::sync::atomic::Ordering::Relaxed);
                exec.log("receiver: freed destination".to_string());
                Step::Done
            }
        }
    }

    fn fp(&self, h: &mut DefaultHasher) {
        "abort-receiver".hash(h);
        self.pc.hash(h);
    }
}

#[derive(Hash)]
enum AbortSenderPc {
    Claim,
    Write,
    Deliver,
    Fallback,
}

struct AbortSender {
    win: Rc<MWindow>,
    ring: Rc<MRing>,
    pc: AbortSenderPc,
}

impl ModelThread for AbortSender {
    fn step(&mut self, exec: &Exec) -> Step {
        match self.pc {
            AbortSenderPc::Claim => {
                if proto::window_try_claim(&*self.win, TAG) {
                    exec.log("sender: claimed window (direct path)".to_string());
                    self.pc = AbortSenderPc::Write;
                } else {
                    exec.log("sender: no window, falling back".to_string());
                    self.pc = AbortSenderPc::Fallback;
                }
                Step::Ran
            }
            AbortSenderPc::Write => {
                if exec.latest(self.win.freed) != 0 {
                    return Step::Fail(
                        "use-after-free on the abort path: sender wrote through a \
                         window whose destination was freed"
                            .to_string(),
                    );
                }
                exec.store(self.win.dst[0], 100, std::sync::atomic::Ordering::Relaxed);
                exec.log("sender: wrote contribution".to_string());
                self.pc = AbortSenderPc::Deliver;
                Step::Ran
            }
            AbortSenderPc::Deliver => {
                proto::window_contribution_delivered(&*self.win);
                exec.log("sender: delivered".to_string());
                Step::Done
            }
            AbortSenderPc::Fallback => match ring_push(&self.ring, 42) {
                Ok(()) => {
                    exec.log("sender: sent fallback message".to_string());
                    Step::Done
                }
                Err(_) => Step::Yield,
            },
        }
    }

    fn fp(&self, h: &mut DefaultHasher) {
        "abort-sender".hash(h);
        self.pc.hash(h);
    }
}

/// Exhaustively check the panic-abort path: the receiver publishes a window, then
/// unwinds — absorbing the outstanding contribution whether it arrives as a direct
/// write (the pending counter must pin the window until the write lands) or as a
/// classic fallback message (absorbed and dropped unplaced).  Asserts no
/// use-after-free of the freed destination and no deadlock on any interleaving.
pub fn check_window_abort() -> Report {
    explore(|exec: &Rc<Exec>| {
        let win = Rc::new(MWindow::new(exec, 1));
        let ring = Rc::new(MRing::new(exec, 2));
        vec![
            Box::new(AbortReceiver {
                win: Rc::clone(&win),
                ring: Rc::clone(&ring),
                pc: AbortReceiverPc::Publish,
            }) as Box<dyn ModelThread>,
            Box::new(AbortSender {
                win,
                ring,
                pc: AbortSenderPc::Claim,
            }),
        ]
    })
}
