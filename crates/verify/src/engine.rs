//! The exploration engine: an operational release/acquire memory model plus a
//! replay-based DFS scheduler.
//!
//! ## Memory model
//!
//! Each atomic location keeps its full **modification order** as a list of store
//! events; each model thread carries a **view** — for every location, the timestamp of
//! the newest store it is obliged to observe.  A load may read *any* store no older
//! than the thread's view (stale reads are explicit nondeterminism, explored by the
//! DFS), an `Acquire` load additionally joins the release-view attached to the store
//! it reads, and a `Release` store attaches the storing thread's view for later
//! acquirers.  Read-modify-writes always read the newest store (atomicity).  `SeqCst`
//! is approximated with a global SC view: `SeqCst` stores, RMWs, and fences publish
//! the acting thread's view into it, and every `SeqCst` operation first absorbs it —
//! strong enough to prove the doorbell protocol, weak enough that deleting the
//! producer-side fence re-exposes the lost-wakeup interleaving (see the seeded-bug
//! tests).  Two deliberate restrictions keep the model finite and are documented
//! assumptions, not theorems: stores are appended at the tail of modification order,
//! and a thread that has yielded reads fresh values on its next action (eventual
//! visibility — without it every spin loop is an infinite stale-read path).
//!
//! ## Scheduler
//!
//! An execution is replayed deterministically from a **decision tape**: every point
//! with more than one possibility (which runnable thread steps next, which store a
//! load reads, which parked thread a notify wakes) consults the tape, appending a
//! first-choice entry when it runs off the end.  After each execution the tape
//! backtracks odometer-style, so the search enumerates every interleaving and every
//! read choice exactly once.  Pruning: threads that yielded are not rescheduled until
//! another thread makes progress (spin steps commute), singleton choices consume no
//! tape entry, unreadable stores are garbage-collected, and whole states are
//! fingerprinted — a state reached twice by different prefixes is explored only once,
//! which is sound because the tape exhausts a state's subtree before any decision
//! above it changes.

use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;

/// Index of an atomic location registered with [`Exec::new_loc`].
pub type Loc = usize;
/// Index of a modeled mutex registered with [`Exec::new_mutex`].
pub type MutexId = usize;
/// Index of a modeled condition variable registered with [`Exec::new_condvar`].
pub type CvId = usize;
/// Index of a model thread (position in the vector returned by the scenario builder).
pub type ThreadId = usize;

/// Per-execution step budget: exceeding it means the pruning failed to cut a spin
/// cycle, which is reported as a livelock rather than looping forever.
const MAX_STEPS: usize = 100_000;
/// Total execution budget per exploration; reports `complete = false` when hit.
const MAX_EXECUTIONS: u64 = 50_000_000;

#[derive(Clone, Debug, Hash)]
struct StoreEvt {
    /// Per-location timestamp (position in modification order, never reused).
    ts: u32,
    val: u64,
    /// View snapshot attached by `Release`-or-stronger stores; `Acquire`-or-stronger
    /// loads that read this store join it.
    rel_view: Option<Vec<u32>>,
}

struct LocHist {
    name: &'static str,
    stores: Vec<StoreEvt>,
}

struct ModelMutex {
    owner: Option<ThreadId>,
    /// View released by the last unlock; joined by the next lock.
    rel_view: Vec<u32>,
}

/// Scheduler-visible thread state.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum TState {
    Ready,
    /// Spinning or lock-blocked: not rescheduled until another thread progresses.
    Yielded,
    Parked(CvId),
    Done,
}

#[derive(Clone, Copy, Debug)]
struct Decision {
    chosen: usize,
    arity: usize,
}

/// The replay tape: one entry per nondeterministic decision in execution order.
struct Tape {
    decisions: Vec<Decision>,
    pos: usize,
    /// Length of the replayed prefix at execution start; fingerprint pruning is
    /// suppressed until the tape is past it (see module docs).
    boundary: usize,
}

impl Tape {
    fn choose(&mut self, arity: usize) -> usize {
        debug_assert!(arity >= 1);
        if arity == 1 {
            return 0;
        }
        let chosen = if self.pos < self.decisions.len() {
            let d = self.decisions[self.pos];
            debug_assert_eq!(d.arity, arity, "nondeterministic replay: arity changed");
            d.chosen
        } else {
            self.decisions.push(Decision { chosen: 0, arity });
            0
        };
        self.pos += 1;
        chosen
    }

    /// Advance to the next untried decision sequence; `false` when exhausted.
    fn backtrack(&mut self) -> bool {
        while let Some(last) = self.decisions.last_mut() {
            if last.chosen + 1 < last.arity {
                last.chosen += 1;
                self.pos = 0;
                self.boundary = self.decisions.len();
                return true;
            }
            self.decisions.pop();
        }
        false
    }
}

/// The shared execution context handed to model threads: atomic locations, modeled
/// mutexes/condvars, the decision tape, and the action log.  All methods take `&self`
/// (interior mutability) so instrumented cells can implement the `mpsim::proto` cell
/// traits, whose methods take `&self` exactly like `std::sync::atomic` types.
pub struct Exec {
    inner: RefCell<Inner>,
}

struct Inner {
    locs: Vec<LocHist>,
    views: Vec<Vec<u32>>,
    sc_view: Vec<u32>,
    mutexes: Vec<ModelMutex>,
    n_condvars: usize,
    states: Vec<TState>,
    /// Threads that yielded read fresh (newest) values on their next action.
    fresh: Vec<bool>,
    cur: ThreadId,
    tape: Tape,
    steps: usize,
    log: Vec<String>,
}

impl Inner {
    fn join_view(dst: &mut Vec<u32>, src: &[u32]) {
        if dst.len() < src.len() {
            dst.resize(src.len(), 0);
        }
        for (d, s) in dst.iter_mut().zip(src) {
            *d = (*d).max(*s);
        }
    }

    fn publish_sc(&mut self) {
        let view = self.views[self.cur].clone();
        Self::join_view(&mut self.sc_view, &view);
    }

    fn absorb_sc(&mut self) {
        let sc = self.sc_view.clone();
        Self::join_view(&mut self.views[self.cur], &sc);
    }

    /// Drop stores no live thread can read any more (the newest is always kept).
    fn gc(&mut self) {
        for loc in 0..self.locs.len() {
            let mut min_view = u32::MAX;
            for (t, view) in self.views.iter().enumerate() {
                if self.states[t] != TState::Done {
                    min_view = min_view.min(view[loc]);
                }
            }
            min_view = min_view.min(self.sc_view[loc]);
            let stores = &mut self.locs[loc].stores;
            let last_ts = stores.last().expect("location history never empty").ts;
            stores.retain(|s| s.ts >= min_view || s.ts == last_ts);
        }
    }

    fn fingerprint(&self, threads: &[Box<dyn ModelThread>]) -> u64 {
        let mut h = DefaultHasher::new();
        for loc in &self.locs {
            loc.stores.hash(&mut h);
        }
        self.views.hash(&mut h);
        self.sc_view.hash(&mut h);
        for m in &self.mutexes {
            m.owner.hash(&mut h);
            m.rel_view.hash(&mut h);
        }
        self.states.hash(&mut h);
        self.fresh.hash(&mut h);
        for t in threads {
            t.fp(&mut h);
        }
        h.finish()
    }
}

impl Exec {
    fn new(tape: Tape, nthreads: usize) -> Exec {
        Exec {
            inner: RefCell::new(Inner {
                locs: Vec::new(),
                views: vec![Vec::new(); nthreads],
                sc_view: Vec::new(),
                mutexes: Vec::new(),
                n_condvars: 0,
                states: vec![TState::Ready; nthreads],
                fresh: vec![false; nthreads],
                cur: 0,
                tape,
                steps: 0,
                log: Vec::new(),
            }),
        }
    }

    /// Register an atomic location with an initial value visible to every thread.
    pub fn new_loc(&self, name: &'static str, init: u64) -> Loc {
        let mut inner = self.inner.borrow_mut();
        let loc = inner.locs.len();
        inner.locs.push(LocHist {
            name,
            stores: vec![StoreEvt {
                ts: 0,
                val: init,
                rel_view: None,
            }],
        });
        for view in &mut inner.views {
            view.push(0);
        }
        inner.sc_view.push(0);
        loc
    }

    /// Register a modeled mutex.
    pub fn new_mutex(&self) -> MutexId {
        let mut inner = self.inner.borrow_mut();
        let nlocs = inner.locs.len();
        inner.mutexes.push(ModelMutex {
            owner: None,
            rel_view: vec![0; nlocs],
        });
        inner.mutexes.len() - 1
    }

    /// Register a modeled condition variable.
    pub fn new_condvar(&self) -> CvId {
        let mut inner = self.inner.borrow_mut();
        inner.n_condvars += 1;
        inner.n_condvars - 1
    }

    /// Atomic load at `ord`, branching the search over every readable store.
    pub fn load(&self, loc: Loc, ord: Ordering) -> u64 {
        let mut inner = self.inner.borrow_mut();
        debug_assert!(!matches!(ord, Ordering::Release | Ordering::AcqRel));
        if ord == Ordering::SeqCst {
            inner.absorb_sc();
        }
        let cur = inner.cur;
        let min_ts = inner.views[cur][loc];
        let fresh = inner.fresh[cur];
        let cands: Vec<usize> = inner.locs[loc]
            .stores
            .iter()
            .enumerate()
            .filter(|(_, s)| s.ts >= min_ts)
            .map(|(i, _)| i)
            .collect();
        debug_assert!(!cands.is_empty(), "view ahead of history");
        let idx = if fresh {
            *cands.last().expect("nonempty")
        } else {
            cands[inner.tape.choose(cands.len())]
        };
        let evt = inner.locs[loc].stores[idx].clone();
        inner.views[cur][loc] = inner.views[cur][loc].max(evt.ts);
        if matches!(ord, Ordering::Acquire | Ordering::SeqCst) {
            if let Some(rv) = &evt.rel_view {
                let rv = rv.clone();
                Inner::join_view(&mut inner.views[cur], &rv);
            }
        }
        evt.val
    }

    /// Atomic store at `ord`, appended at the tail of modification order.
    pub fn store(&self, loc: Loc, val: u64, ord: Ordering) {
        let mut inner = self.inner.borrow_mut();
        debug_assert!(!matches!(ord, Ordering::Acquire | Ordering::AcqRel));
        if ord == Ordering::SeqCst {
            inner.absorb_sc();
        }
        let ts = inner.locs[loc].stores.last().expect("nonempty").ts + 1;
        let cur = inner.cur;
        inner.views[cur][loc] = ts;
        let rel_view =
            matches!(ord, Ordering::Release | Ordering::SeqCst).then(|| inner.views[cur].clone());
        inner.locs[loc].stores.push(StoreEvt { ts, val, rel_view });
        if ord == Ordering::SeqCst {
            inner.publish_sc();
        }
    }

    /// Atomic `fetch_sub` (wrapping) at `ord`; always reads the newest store.
    pub fn fetch_sub(&self, loc: Loc, sub: u64, ord: Ordering) -> u64 {
        let mut inner = self.inner.borrow_mut();
        if ord == Ordering::SeqCst {
            inner.absorb_sc();
        }
        let latest = inner.locs[loc].stores.last().expect("nonempty").clone();
        let cur = inner.cur;
        if matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst) {
            if let Some(rv) = &latest.rel_view {
                let rv = rv.clone();
                Inner::join_view(&mut inner.views[cur], &rv);
            }
        }
        let ts = latest.ts + 1;
        inner.views[cur][loc] = ts;
        let rel_view = matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
            .then(|| inner.views[cur].clone());
        inner.locs[loc].stores.push(StoreEvt {
            ts,
            val: latest.val.wrapping_sub(sub),
            rel_view,
        });
        if ord == Ordering::SeqCst {
            inner.publish_sc();
        }
        latest.val
    }

    /// A `SeqCst` fence: absorb the SC view, then publish into it.
    pub fn fence_seq_cst(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.absorb_sc();
        inner.publish_sc();
    }

    /// Oracle read of the newest value, bypassing views — for scenario assertions
    /// (e.g. use-after-free detection), never for protocol steps.
    pub fn latest(&self, loc: Loc) -> u64 {
        self.inner.borrow().locs[loc]
            .stores
            .last()
            .expect("nonempty")
            .val
    }

    /// Try to take a modeled mutex; on success joins the last unlocker's view.
    /// On failure the caller should return [`Step::Yield`] without advancing.
    pub fn try_lock(&self, m: MutexId) -> bool {
        let mut inner = self.inner.borrow_mut();
        if inner.mutexes[m].owner.is_some() {
            return false;
        }
        let cur = inner.cur;
        inner.mutexes[m].owner = Some(cur);
        let rv = inner.mutexes[m].rel_view.clone();
        Inner::join_view(&mut inner.views[cur], &rv);
        true
    }

    /// Release a modeled mutex, publishing the holder's view to the next locker.
    pub fn unlock(&self, m: MutexId) {
        let mut inner = self.inner.borrow_mut();
        let cur = inner.cur;
        debug_assert_eq!(inner.mutexes[m].owner, Some(cur), "unlock by non-owner");
        let view = inner.views[cur].clone();
        Inner::join_view(&mut inner.mutexes[m].rel_view, &view);
        inner.mutexes[m].owner = None;
    }

    /// Wake one thread parked on `cv`, if any (no-op otherwise, like
    /// `Condvar::notify_one`).  The woken thread re-locks its mutex on its next step.
    pub fn notify_one(&self, cv: CvId) {
        let mut inner = self.inner.borrow_mut();
        let parked: Vec<ThreadId> = (0..inner.states.len())
            .filter(|&t| inner.states[t] == TState::Parked(cv))
            .collect();
        if parked.is_empty() {
            return;
        }
        let pick = parked[inner.tape.choose(parked.len())];
        inner.states[pick] = TState::Ready;
    }

    /// Append a line to the execution's action log (shown on violation).
    pub fn log(&self, msg: String) {
        self.inner.borrow_mut().log.push(msg);
    }

    /// Name of a location (for scenario-side assertion messages).
    pub fn loc_name(&self, loc: Loc) -> &'static str {
        self.inner.borrow().locs[loc].name
    }
}

/// What a model thread did in one action.
pub enum Step {
    /// Performed a visible action; other yielded threads are re-armed.
    Ran,
    /// Could not make progress (spin retry or lock blocked); the thread is not
    /// rescheduled until another thread progresses, and its next action reads fresh
    /// values (the eventual-visibility assumption).
    Yield,
    /// Parked on a condition variable after releasing its mutex; runnable again only
    /// after a matching [`Exec::notify_one`].
    Park(CvId),
    /// The thread's protocol role is complete.
    Done,
    /// A scenario assertion failed: the checker stops with this violation.
    Fail(String),
}

/// One protocol role (producer, consumer, sender, receiver) as an explicit state
/// machine.  Each [`ModelThread::step`] call performs one scheduling-visible action —
/// typically one `mpsim::proto` step function over instrumented cells.
pub trait ModelThread {
    /// Perform the next action.
    fn step(&mut self, exec: &Exec) -> Step;
    /// Hash the thread's program counter and locals into the state fingerprint.
    fn fp(&self, h: &mut DefaultHasher);
}

/// A counterexample: the failure plus the tail of the action log that led to it.
#[derive(Debug)]
pub struct Violation {
    /// What went wrong (assertion text, or deadlock/livelock description).
    pub message: String,
    /// The logged actions of the failing execution.
    pub trace: Vec<String>,
}

/// The result of exhausting (or abandoning) an exploration.
#[derive(Debug)]
pub struct Report {
    /// Executions actually run (pruned executions count).
    pub executions: u64,
    /// Distinct states fingerprinted.
    pub states: u64,
    /// `true` when every interleaving/read choice was covered (possibly modulo
    /// fingerprint pruning), `false` when an execution or step budget was hit.
    pub complete: bool,
    /// The first counterexample found, if any.
    pub violation: Option<Violation>,
}

impl Report {
    /// Panic unless the exploration completed with no violation.
    pub fn assert_clean(&self, what: &str) {
        assert!(
            self.complete,
            "{what}: exploration did not complete ({} executions)",
            self.executions
        );
        if let Some(v) = &self.violation {
            panic!(
                "{what}: violation found after {} executions: {}\ntrace:\n  {}",
                self.executions,
                v.message,
                v.trace.join("\n  ")
            );
        }
    }

    /// Panic unless a violation whose message contains `needle` was found.
    pub fn assert_caught(&self, what: &str, needle: &str) {
        let v = self
            .violation
            .as_ref()
            .unwrap_or_else(|| panic!("{what}: expected a violation, exploration was clean"));
        assert!(
            v.message.contains(needle),
            "{what}: violation {:?} does not mention {needle:?}",
            v.message
        );
    }
}

/// Exhaustively explore every interleaving and read choice of the scenario built by
/// `build`.  The builder must be deterministic: it is re-invoked for every execution
/// and must register locations/mutexes/condvars in the same order each time.
pub fn explore<F>(build: F) -> Report
where
    F: Fn(&std::rc::Rc<Exec>) -> Vec<Box<dyn ModelThread>>,
{
    let mut tape = Tape {
        decisions: Vec::new(),
        pos: 0,
        boundary: 0,
    };
    let mut visited: HashSet<u64> = HashSet::new();
    let mut executions: u64 = 0;
    loop {
        executions += 1;
        // Thread count: probe once on the first execution.
        let exec = std::rc::Rc::new(Exec::new(
            Tape {
                decisions: std::mem::take(&mut tape.decisions),
                pos: 0,
                boundary: tape.boundary,
            },
            0,
        ));
        let mut threads = build(&exec);
        {
            let mut inner = exec.inner.borrow_mut();
            let n = threads.len();
            let nlocs = inner.locs.len();
            inner.views = vec![vec![0; nlocs]; n];
            inner.states = vec![TState::Ready; n];
            inner.fresh = vec![false; n];
        }
        let violation = run_one(&exec, &mut threads, &mut visited);
        drop(threads);
        let inner = std::rc::Rc::try_unwrap(exec)
            .ok()
            .expect("threads must not outlive the execution")
            .inner
            .into_inner();
        tape = inner.tape;
        if let Some(v) = violation {
            return Report {
                executions,
                states: visited.len() as u64,
                complete: false,
                violation: Some(v),
            };
        }
        if executions >= MAX_EXECUTIONS {
            return Report {
                executions,
                states: visited.len() as u64,
                complete: false,
                violation: None,
            };
        }
        if !tape.backtrack() {
            return Report {
                executions,
                states: visited.len() as u64,
                complete: true,
                violation: None,
            };
        }
    }
}

fn run_one(
    exec: &std::rc::Rc<Exec>,
    threads: &mut [Box<dyn ModelThread>],
    visited: &mut HashSet<u64>,
) -> Option<Violation> {
    loop {
        let (ready, done_count, parked, past_boundary, fp) = {
            let inner = exec.inner.borrow();
            let ready: Vec<ThreadId> = (0..threads.len())
                .filter(|&t| inner.states[t] == TState::Ready)
                .collect();
            let done = inner.states.iter().filter(|s| **s == TState::Done).count();
            let parked: Vec<ThreadId> = (0..threads.len())
                .filter(|&t| matches!(inner.states[t], TState::Parked(_)))
                .collect();
            let past = inner.tape.pos > inner.tape.boundary;
            let fp = inner.fingerprint(threads);
            (ready, done, parked, past, fp)
        };
        if done_count == threads.len() {
            return None;
        }
        if ready.is_empty() {
            let yielded: Vec<ThreadId> = {
                let inner = exec.inner.borrow();
                (0..threads.len())
                    .filter(|&t| inner.states[t] == TState::Yielded)
                    .collect()
            };
            if !yielded.is_empty() {
                // Re-arm spinners: nothing else can move first.
                let mut inner = exec.inner.borrow_mut();
                for t in yielded {
                    inner.states[t] = TState::Ready;
                }
                continue;
            }
            let (trace, names) = {
                let inner = exec.inner.borrow();
                (inner.log.clone(), format!("{parked:?}"))
            };
            return Some(Violation {
                message: format!(
                    "deadlock: threads {names} are parked forever and no thread can run \
                     (lost wakeup)"
                ),
                trace,
            });
        }
        // Fingerprint pruning — only past the replayed prefix (see module docs).
        if past_boundary && !visited.insert(fp) {
            return None;
        }
        {
            let mut inner = exec.inner.borrow_mut();
            inner.steps += 1;
            if inner.steps > MAX_STEPS {
                return Some(Violation {
                    message: "livelock: per-execution step budget exceeded".to_string(),
                    trace: inner.log.clone(),
                });
            }
        }
        let tid = {
            let mut inner = exec.inner.borrow_mut();
            let pick = inner.tape.choose(ready.len());
            let tid = ready[pick];
            inner.cur = tid;
            tid
        };
        let step = threads[tid].step(exec);
        let mut inner = exec.inner.borrow_mut();
        match step {
            Step::Ran => {
                inner.fresh[tid] = false;
                rearm_others(&mut inner, tid);
            }
            Step::Yield => {
                inner.states[tid] = TState::Yielded;
                inner.fresh[tid] = true;
            }
            Step::Park(cv) => {
                // `Ready` again only via notify_one; `fresh` so the post-wake rescan
                // observes what the waker published.
                inner.states[tid] = TState::Parked(cv);
                inner.fresh[tid] = true;
                rearm_others(&mut inner, tid);
            }
            Step::Done => {
                inner.states[tid] = TState::Done;
                rearm_others(&mut inner, tid);
            }
            Step::Fail(message) => {
                return Some(Violation {
                    message,
                    trace: inner.log.clone(),
                });
            }
        }
        inner.gc();
    }
}

fn rearm_others(inner: &mut Inner, actor: ThreadId) {
    for t in 0..inner.states.len() {
        if t != actor && inner.states[t] == TState::Yielded {
            inner.states[t] = TState::Ready;
        }
    }
}
