//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to a crates registry, so this shim implements the
//! subset of the criterion 0.5 API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`,
//! and the `criterion_group!` / `criterion_main!` macros — backed by a simple
//! median-of-samples wall-clock timer.  It reports one line per benchmark to stdout.
//! Swap the path dependency for the real crate when a registry is available; no bench
//! source changes are required.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function (same contract as `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus a parameter rendered with `Display`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{param}"`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{param}", name.into()),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` `sample_size` times, recording the wall-clock time of each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    group_name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        self.criterion
            .report(&format!("{}/{id}", self.group_name), &bencher.samples);
        self
    }

    /// Run one benchmark with an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Finish the group (no-op beyond matching the criterion API).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            group_name: name.into(),
            sample_size: 10,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &bencher.samples);
        self
    }

    fn report(&mut self, name: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{name:<50} (no samples)");
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let max = sorted[sorted.len() - 1];
        println!(
            "{name:<50} median {:>12.3?}  (min {:?}, max {:?}, n={})",
            median,
            min,
            max,
            samples.len()
        );
    }
}

/// Declare a benchmark group runner function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench `main` running each group, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_the_closure_the_requested_number_of_times() {
        let mut c = Criterion::default();
        let mut runs = 0usize;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(7);
            g.bench_function("count", |b| b.iter(|| runs += 1));
            g.finish();
        }
        assert_eq!(runs, 7);
    }

    #[test]
    fn bench_with_input_passes_the_input() {
        let mut c = Criterion::default();
        let mut seen = 0u64;
        c.benchmark_group("g").sample_size(1).bench_with_input(
            BenchmarkId::new("id", 5),
            &41u64,
            |b, &x| b.iter(|| seen = x + 1),
        );
        assert_eq!(seen, 42);
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("rcb", 8).to_string(), "rcb/8");
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
    }
}
