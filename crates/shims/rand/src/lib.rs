//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so this shim provides the
//! (small) subset of the `rand` 0.8 API the workspace actually uses: `StdRng` seeded from
//! a `u64`, uniform `gen_range` over half-open ranges of `f64` and the primitive integer
//! types, `gen_bool`, and `SliceRandom::shuffle`.  The generator is xoshiro256++ seeded
//! with SplitMix64 — deterministic across platforms, which is all the simulations need
//! (they seed explicitly and never ask for OS entropy).

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Uniform sampling support for one range type (subset of `rand`'s `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample from `self`.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        uniform_f64(self.next_u64()) < p
    }
}

/// Map 64 random bits to a uniform f64 in [0, 1).
fn uniform_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + uniform_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl SampleRange for Range<$t> {
                type Output = $t;
                fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Modulo bias is < 2^-64 for the span sizes used here.
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as i128 + draw as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// Random generators over slices (subset of `rand::seq::SliceRandom`).
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `SliceRandom` method the workspace uses).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    ///
    /// Note: the stream differs from upstream `StdRng` (which is ChaCha-based); the
    /// workspace only relies on determinism for a fixed seed, not on a particular stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion of the seed, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&x));
            let k = rng.gen_range(3usize..9);
            assert!((3..9).contains(&k));
            let j = rng.gen_range(-4i64..4);
            assert!((-4..4).contains(&j));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be the identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(3usize..3);
    }
}
