//! The sequential reference implementation of the CHARMM-like dynamics loop.
//!
//! This is both the correctness oracle for the parallel code (the parallel simulation must
//! track it to floating-point reordering tolerance) and the "1 processor" column of
//! Table 1.

use crate::bonds::accumulate_bonded_forces;
use crate::integrate::integrate_all;
use crate::nonbonded::{accumulate_nonbonded_forces, build_neighbor_list, NeighborList};
use crate::system::MolecularSystem;

/// Sequential CHARMM-like simulation state.
pub struct SequentialCharmm {
    /// The molecular system being simulated (positions/velocities evolve in place).
    pub system: MolecularSystem,
    /// Current non-bonded neighbour list.
    pub neighbor_list: NeighborList,
    /// Steps between neighbour-list regenerations.
    pub list_update_interval: usize,
    steps_taken: usize,
    /// Total pair interactions evaluated so far (bonded + non-bonded): the work measure.
    pub interactions_evaluated: usize,
    /// Number of neighbour-list regenerations performed.
    pub list_updates: usize,
}

impl SequentialCharmm {
    /// Create a simulation with the given list-update interval (the paper regenerates the
    /// list every 10–100 steps; its benchmark updates 40 times in 1 000 steps, i.e. every
    /// 25 steps).
    pub fn new(system: MolecularSystem, list_update_interval: usize) -> Self {
        assert!(list_update_interval > 0);
        let neighbor_list = build_neighbor_list(&system.positions, system.box_size, system.cutoff);
        Self {
            system,
            neighbor_list,
            list_update_interval,
            steps_taken: 0,
            interactions_evaluated: 0,
            list_updates: 1,
        }
    }

    /// Number of steps taken so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Compute the forces for the current configuration (bonded + non-bonded).
    pub fn compute_forces(&mut self) -> Vec<[f64; 3]> {
        let n = self.system.natoms();
        let mut forces = vec![[0.0f64; 3]; n];
        self.interactions_evaluated += accumulate_bonded_forces(
            &self.system.positions,
            &self.system.bonds,
            self.system.box_size,
            &mut forces,
        );
        let targets: Vec<usize> = (0..n).collect();
        self.interactions_evaluated += accumulate_nonbonded_forces(
            &targets,
            &self.neighbor_list,
            &self.system.positions,
            self.system.box_size,
            &mut forces,
        );
        forces
    }

    /// Advance the simulation by one time step (statement S + loops L2, L3 + integration
    /// of Figure 2).
    pub fn step(&mut self) {
        if self.steps_taken > 0 && self.steps_taken.is_multiple_of(self.list_update_interval) {
            self.neighbor_list = build_neighbor_list(
                &self.system.positions,
                self.system.box_size,
                self.system.cutoff,
            );
            self.list_updates += 1;
        }
        let forces = self.compute_forces();
        integrate_all(
            &mut self.system.positions,
            &mut self.system.velocities,
            &forces,
            &self.system.masses,
            self.system.box_size,
        );
        self.steps_taken += 1;
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Kinetic energy of the system (used as a cheap stability check in tests).
    pub fn kinetic_energy(&self) -> f64 {
        self.system
            .velocities
            .iter()
            .zip(&self.system.masses)
            .map(|(v, &m)| 0.5 * m * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemConfig;

    #[test]
    fn simulation_runs_and_counts_work() {
        let sys = MolecularSystem::build(&SystemConfig::small(17));
        let mut sim = SequentialCharmm::new(sys, 5);
        sim.run(12);
        assert_eq!(sim.steps_taken(), 12);
        assert!(sim.interactions_evaluated > 0);
        // 12 steps with updates at steps 5 and 10 → 3 lists built in total (incl. initial).
        assert_eq!(sim.list_updates, 3);
    }

    #[test]
    fn dynamics_stay_finite() {
        let sys = MolecularSystem::build(&SystemConfig::small(23));
        let mut sim = SequentialCharmm::new(sys, 10);
        sim.run(30);
        assert!(sim.kinetic_energy().is_finite());
        for p in &sim.system.positions {
            assert!(p.iter().all(|c| c.is_finite()));
        }
    }

    #[test]
    fn neighbor_list_adapts_as_atoms_move() {
        let sys = MolecularSystem::build(&SystemConfig::small(31));
        let mut sim = SequentialCharmm::new(sys, 4);
        let initial = sim.neighbor_list.clone();
        sim.run(20);
        // After several updates the list is very likely different; what we require is that
        // regeneration happened and produced a structurally valid list.
        assert_eq!(sim.neighbor_list.natoms(), initial.natoms());
        assert!(sim.list_updates >= 5);
    }

    #[test]
    fn deterministic_across_runs() {
        let make = || {
            let sys = MolecularSystem::build(&SystemConfig::small(8));
            let mut sim = SequentialCharmm::new(sys, 5);
            sim.run(10);
            sim.system.positions
        };
        assert_eq!(make(), make());
    }
}
