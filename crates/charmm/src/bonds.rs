//! The bonded-force loop (loop L2 of Figure 2).
//!
//! Bonded forces act between pairs of atoms connected by chemical bonds; the bond list is
//! fixed for the whole simulation, so its indirection arrays (`ib`, `jb`) never adapt and
//! the preprocessing for this loop is done once.  The force model is a harmonic spring
//! around an equilibrium length — physically crude, computationally identical in structure
//! to CHARMM's bonded terms.

use crate::system::{displacement_pbc, dist2};

/// Spring constant of the harmonic bond model.
pub const BOND_K: f64 = 2.0;
/// Equilibrium bond length.
pub const BOND_R0: f64 = 1.0;

/// Force exerted on atom `i` by its bond to atom `j` (the paper's `f`), given the
/// minimum-image displacement from `i` to `j`.  The force on `j` is the negation (the
/// paper's `g`).
pub fn bond_force(dx: [f64; 3]) -> [f64; 3] {
    let r2 = dist2(dx);
    let r = r2.sqrt().max(1e-9);
    let magnitude = BOND_K * (r - BOND_R0) / r;
    [magnitude * dx[0], magnitude * dx[1], magnitude * dx[2]]
}

/// Sequential bonded-force computation: accumulate the forces of every bond into `forces`.
/// Returns the number of bond interactions evaluated (the work measure used for load
/// accounting).
pub fn accumulate_bonded_forces(
    positions: &[[f64; 3]],
    bonds: &[(usize, usize)],
    box_size: f64,
    forces: &mut [[f64; 3]],
) -> usize {
    for &(i, j) in bonds {
        let dx = displacement_pbc(positions[i], positions[j], box_size);
        let f = bond_force(dx);
        for k in 0..3 {
            forces[i][k] += f[k];
            forces[j][k] -= f[k];
        }
    }
    bonds.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bond_at_equilibrium_exerts_no_force() {
        let f = bond_force([BOND_R0, 0.0, 0.0]);
        assert!(f.iter().all(|&c| c.abs() < 1e-12));
    }

    #[test]
    fn stretched_bond_pulls_atoms_together() {
        // Atom j is 2 units away along +x (stretched): the force on i points toward j.
        let f = bond_force([2.0, 0.0, 0.0]);
        assert!(f[0] > 0.0);
        assert!(f[1].abs() < 1e-12 && f[2].abs() < 1e-12);
        // Compressed bond pushes apart.
        let f = bond_force([0.5, 0.0, 0.0]);
        assert!(f[0] < 0.0);
    }

    #[test]
    fn newtons_third_law_in_accumulation() {
        let positions = vec![[0.0, 0.0, 0.0], [1.7, 0.0, 0.0], [1.7, 1.3, 0.0]];
        let bonds = vec![(0, 1), (1, 2)];
        let mut forces = vec![[0.0; 3]; 3];
        let count = accumulate_bonded_forces(&positions, &bonds, 100.0, &mut forces);
        assert_eq!(count, 2);
        // Total force is zero (momentum conservation).
        for k in 0..3 {
            let total: f64 = forces.iter().map(|f| f[k]).sum();
            assert!(total.abs() < 1e-12, "net force component {k} = {total}");
        }
        assert!(forces[0][0] > 0.0); // pulled toward atom 1
    }

    #[test]
    fn forces_respect_periodic_images() {
        // Two atoms bonded across the periodic boundary: distance is 1.0 through the
        // boundary, i.e. at equilibrium, so no force.
        let positions = vec![[0.25, 0.0, 0.0], [9.25, 0.0, 0.0]];
        let bonds = vec![(0, 1)];
        let mut forces = vec![[0.0; 3]; 2];
        accumulate_bonded_forces(&positions, &bonds, 10.0, &mut forces);
        assert!(forces[0][0].abs() < 1e-12);
    }
}
