//! The non-bonded neighbour list and force loop (statement S and loop L3 of Figure 2).
//!
//! Non-bonded forces nominally act between all pairs of atoms; CHARMM truncates them at a
//! cutoff radius and keeps, for every atom, the list of partners inside the cutoff (the
//! `inblo`/`jnb` CSR arrays of Figure 2).  Atoms move, so the list — and with it the data
//! access pattern of the dominant loop — adapts every 10–100 steps.  List construction
//! here uses a cell grid so it is O(N · density) rather than O(N²).

use crate::system::{displacement_pbc, dist2};

/// Lennard-Jones-like parameters of the truncated pair potential.
pub const LJ_EPS: f64 = 0.05;
/// Pair-potential length scale.
pub const LJ_SIGMA: f64 = 1.1;

/// The non-bonded neighbour list in CSR form: partner indices of atom `i` are
/// `partners[offsets[i]..offsets[i+1]]` — exactly the `inblo`/`jnb` layout of Figure 2.
/// Each pair appears once, stored on the lower-indexed atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborList {
    /// CSR row offsets (`inblo`), length natoms + 1.
    pub offsets: Vec<usize>,
    /// Flattened partner indices (`jnb`).
    pub partners: Vec<usize>,
}

impl NeighborList {
    /// Total number of pair interactions in the list.
    pub fn interaction_count(&self) -> usize {
        self.partners.len()
    }

    /// Partners of atom `i`.
    pub fn partners_of(&self, i: usize) -> &[usize] {
        &self.partners[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Number of atoms the list covers.
    pub fn natoms(&self) -> usize {
        self.offsets.len() - 1
    }
}

/// Build the neighbour list of all atoms (sequential; the parallel code builds lists for
/// owned atoms only, see [`build_neighbor_list_for`]).
pub fn build_neighbor_list(positions: &[[f64; 3]], box_size: f64, cutoff: f64) -> NeighborList {
    let all: Vec<usize> = (0..positions.len()).collect();
    build_neighbor_list_for(&all, positions, box_size, cutoff)
}

/// Build the neighbour list rows for the atoms in `targets` (global indices), searching
/// against *all* atoms in `positions`.  The produced CSR structure has one row per target,
/// in `targets` order; partner indices are global.  A pair (i, j) is stored on whichever of
/// its endpoints appears in `targets`, under the usual `i < j` convention, so summing over
/// rows never double-counts when every atom is a target exactly once across the machine.
pub fn build_neighbor_list_for(
    targets: &[usize],
    positions: &[[f64; 3]],
    box_size: f64,
    cutoff: f64,
) -> NeighborList {
    let n = positions.len();
    let cutoff2 = cutoff * cutoff;
    // Cell grid with cells no smaller than the cutoff.
    let ncell = ((box_size / cutoff).floor() as usize).max(1);
    let cell_size = box_size / ncell as f64;
    let cell_of = |p: [f64; 3]| -> (usize, usize, usize) {
        let clamp = |x: f64| -> usize {
            let c = (x / cell_size) as isize;
            c.rem_euclid(ncell as isize) as usize
        };
        (clamp(p[0]), clamp(p[1]), clamp(p[2]))
    };
    let mut cells: Vec<Vec<usize>> = vec![Vec::new(); ncell * ncell * ncell];
    let cell_index = |c: (usize, usize, usize)| c.0 + ncell * (c.1 + ncell * c.2);
    for (i, &p) in positions.iter().enumerate() {
        cells[cell_index(cell_of(p))].push(i);
    }

    let mut offsets = Vec::with_capacity(targets.len() + 1);
    let mut partners = Vec::new();
    offsets.push(0);
    for &i in targets {
        let (cx, cy, cz) = cell_of(positions[i]);
        let mut row: Vec<usize> = Vec::new();
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    let nx = (cx as i64 + dx).rem_euclid(ncell as i64) as usize;
                    let ny = (cy as i64 + dy).rem_euclid(ncell as i64) as usize;
                    let nz = (cz as i64 + dz).rem_euclid(ncell as i64) as usize;
                    for &j in &cells[cell_index((nx, ny, nz))] {
                        if j <= i {
                            continue;
                        }
                        let d = displacement_pbc(positions[i], positions[j], box_size);
                        if dist2(d) <= cutoff2 {
                            row.push(j);
                        }
                    }
                }
            }
        }
        row.sort_unstable();
        row.dedup();
        partners.extend_from_slice(&row);
        offsets.push(partners.len());
    }
    let _ = n;
    NeighborList { offsets, partners }
}

/// Pair force of the truncated, softened Lennard-Jones-like potential, given the
/// minimum-image displacement from atom `i` to its partner.  Returns the force on atom `i`
/// (the partner receives the negation).
pub fn pair_force(dx: [f64; 3]) -> [f64; 3] {
    let r2 = dist2(dx).max(0.25); // softened core to keep the toy integrator stable
    let s2 = LJ_SIGMA * LJ_SIGMA / r2;
    let s6 = s2 * s2 * s2;
    // d/dr of 4ε(s^12 − s^6), expressed per unit displacement.
    let magnitude = 24.0 * LJ_EPS * (2.0 * s6 * s6 - s6) / r2;
    [-magnitude * dx[0], -magnitude * dx[1], -magnitude * dx[2]]
}

/// Sequential non-bonded force accumulation over a neighbour list whose rows correspond to
/// the atoms listed in `targets` (global indices).  Returns the number of pair
/// interactions evaluated.
pub fn accumulate_nonbonded_forces(
    targets: &[usize],
    list: &NeighborList,
    positions: &[[f64; 3]],
    box_size: f64,
    forces: &mut [[f64; 3]],
) -> usize {
    let mut count = 0;
    for (row, &i) in targets.iter().enumerate() {
        for &j in &list.partners[list.offsets[row]..list.offsets[row + 1]] {
            let dx = displacement_pbc(positions[i], positions[j], box_size);
            let f = pair_force(dx);
            for k in 0..3 {
                forces[i][k] += f[k];
                forces[j][k] -= f[k];
            }
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{MolecularSystem, SystemConfig};

    #[test]
    fn neighbor_list_matches_brute_force() {
        let sys = MolecularSystem::build(&SystemConfig::small(11));
        let list = build_neighbor_list(&sys.positions, sys.box_size, sys.cutoff);
        assert_eq!(list.natoms(), sys.natoms());
        let cutoff2 = sys.cutoff * sys.cutoff;
        // Brute-force reference.
        let mut expected = 0usize;
        for i in 0..sys.natoms() {
            for j in (i + 1)..sys.natoms() {
                if dist2(sys.displacement(i, j)) <= cutoff2 {
                    expected += 1;
                    assert!(
                        list.partners_of(i).contains(&j),
                        "pair ({i},{j}) missing from the list"
                    );
                }
            }
        }
        assert_eq!(list.interaction_count(), expected);
    }

    #[test]
    fn pairs_are_stored_once_on_the_lower_atom() {
        let sys = MolecularSystem::build(&SystemConfig::small(5));
        let list = build_neighbor_list(&sys.positions, sys.box_size, sys.cutoff);
        for i in 0..sys.natoms() {
            for &j in list.partners_of(i) {
                assert!(j > i, "partner {j} of atom {i} is not greater");
            }
        }
    }

    #[test]
    fn partial_target_lists_cover_the_same_pairs() {
        let sys = MolecularSystem::build(&SystemConfig::small(9));
        let full = build_neighbor_list(&sys.positions, sys.box_size, sys.cutoff);
        // Split targets in two halves, as two "processors" would.
        let n = sys.natoms();
        let first: Vec<usize> = (0..n / 2).collect();
        let second: Vec<usize> = (n / 2..n).collect();
        let a = build_neighbor_list_for(&first, &sys.positions, sys.box_size, sys.cutoff);
        let b = build_neighbor_list_for(&second, &sys.positions, sys.box_size, sys.cutoff);
        assert_eq!(
            a.interaction_count() + b.interaction_count(),
            full.interaction_count()
        );
    }

    #[test]
    fn pair_force_is_repulsive_up_close_attractive_far() {
        // dx points from atom i to its partner j.  When they overlap (r < sigma) the force
        // on i must push it *away* from j (negative x here); inside the attractive well it
        // must pull i *toward* j (positive x).
        let close = pair_force([0.8, 0.0, 0.0]);
        assert!(
            close[0] < 0.0,
            "overlapping atoms must repel, got {close:?}"
        );
        let far = pair_force([2.0, 0.0, 0.0]);
        assert!(far[0] > 0.0, "distant atoms inside the well must attract");
    }

    #[test]
    fn nonbonded_accumulation_conserves_momentum() {
        let sys = MolecularSystem::build(&SystemConfig::small(21));
        let targets: Vec<usize> = (0..sys.natoms()).collect();
        let list = build_neighbor_list(&sys.positions, sys.box_size, sys.cutoff);
        let mut forces = vec![[0.0; 3]; sys.natoms()];
        let count =
            accumulate_nonbonded_forces(&targets, &list, &sys.positions, sys.box_size, &mut forces);
        assert_eq!(count, list.interaction_count());
        for k in 0..3 {
            let total: f64 = forces.iter().map(|f| f[k]).sum();
            assert!(total.abs() < 1e-9, "net force component {k} = {total}");
        }
    }
}
