//! Velocity-Verlet integration ("Calculate new positions based on BF and NBF" in
//! Figure 2).

/// Integration time step used by both the sequential and parallel drivers.
pub const DT: f64 = 0.002;

/// Advance one atom by one velocity-Verlet half-kick/drift/half-kick step, assuming the
/// force is constant over the step (adequate for a structural mini-app).  Positions wrap
/// into the periodic box.
pub fn integrate_atom(
    position: &mut [f64; 3],
    velocity: &mut [f64; 3],
    force: [f64; 3],
    mass: f64,
    box_size: f64,
) {
    for k in 0..3 {
        velocity[k] += force[k] / mass * DT;
        position[k] = (position[k] + velocity[k] * DT).rem_euclid(box_size);
    }
}

/// Integrate a whole set of atoms in place.
pub fn integrate_all(
    positions: &mut [[f64; 3]],
    velocities: &mut [[f64; 3]],
    forces: &[[f64; 3]],
    masses: &[f64],
    box_size: f64,
) {
    for i in 0..positions.len() {
        integrate_atom(
            &mut positions[i],
            &mut velocities[i],
            forces[i],
            masses[i],
            box_size,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_atom_moves_in_a_straight_line() {
        let mut p = [1.0, 1.0, 1.0];
        let mut v = [1.0, 0.0, -0.5];
        for _ in 0..10 {
            integrate_atom(&mut p, &mut v, [0.0; 3], 1.0, 100.0);
        }
        assert!((p[0] - (1.0 + 10.0 * DT)).abs() < 1e-12);
        assert!((p[2] - (1.0 - 5.0 * DT)).abs() < 1e-12);
        assert_eq!(v, [1.0, 0.0, -0.5]);
    }

    #[test]
    fn constant_force_accelerates() {
        let mut p = [0.0; 3];
        let mut v = [0.0; 3];
        integrate_atom(&mut p, &mut v, [2.0, 0.0, 0.0], 2.0, 100.0);
        assert!((v[0] - DT).abs() < 1e-12);
        assert!(p[0] > 0.0);
    }

    #[test]
    fn positions_wrap_into_the_box() {
        let mut p = [9.999, 0.001, 5.0];
        let mut v = [10.0, -10.0, 0.0];
        integrate_atom(&mut p, &mut v, [0.0; 3], 1.0, 10.0);
        assert!(p[0] >= 0.0 && p[0] < 10.0);
        assert!(p[1] >= 0.0 && p[1] < 10.0);
    }

    #[test]
    fn integrate_all_matches_per_atom() {
        let mut p1 = vec![[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]];
        let mut v1 = vec![[0.1, 0.0, 0.0], [0.0, 0.2, 0.0]];
        let f = vec![[1.0, 0.0, 0.0], [0.0, -1.0, 0.0]];
        let m = vec![1.0, 2.0];
        let mut p2 = p1.clone();
        let mut v2 = v1.clone();
        integrate_all(&mut p1, &mut v1, &f, &m, 10.0);
        for i in 0..2 {
            integrate_atom(&mut p2[i], &mut v2[i], f[i], m[i], 10.0);
        }
        assert_eq!(p1, p2);
        assert_eq!(v1, v2);
    }
}
