//! # charmm — a CHARMM-like molecular dynamics mini-application
//!
//! The paper's first adaptive application is CHARMM (Chemistry at HARvard Macromolecular
//! Mechanics).  Its computationally dominant part is the molecular-dynamics loop of
//! Figure 2: a **bonded** force loop over a static bond list and a **non-bonded** force
//! loop over a cutoff-limited neighbour list that is regenerated every 10–100 time steps —
//! the prototypical *adaptive irregular* access pattern.
//!
//! This crate reproduces that computational structure (not the chemistry):
//!
//! * [`system`] — builds a synthetic "MbCO + water"-like configuration (the paper's
//!   benchmark has 14 026 atoms) with positions, masses and a bonded topology;
//! * [`bonds`] — the static bonded-force loop (`ib`/`jb` indirection arrays);
//! * [`nonbonded`] — cutoff neighbour-list construction (cell grid) and the adaptive
//!   non-bonded force loop (`inblo`/`jnb` CSR indirection arrays);
//! * [`integrate`] — velocity-Verlet integration;
//! * [`sequential`] — the single-address-space reference implementation;
//! * [`parallel`] — the hand-parallelised CHAOS version: RCB/RIB partitioning, remapping,
//!   inspector/executor with stamped hash-table reuse, schedule merging, and the
//!   instrumentation needed to reproduce Tables 1, 2, 3 and 6 of the paper.

pub mod bonds;
pub mod integrate;
pub mod nonbonded;
pub mod parallel;
pub mod sequential;
pub mod system;

pub use parallel::{
    CharmmPhaseTimes, CharmmStepStats, ParallelCharmm, ParallelConfig, ScheduleMode,
};
pub use sequential::SequentialCharmm;
pub use system::{MolecularSystem, SystemConfig};
