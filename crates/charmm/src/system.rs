//! Synthetic molecular systems with the size and structure of the paper's benchmark case.
//!
//! The paper's CHARMM experiments use myoglobin + carbon monoxide solvated by 3 830 water
//! molecules — 14 026 atoms in total (the `reg(14026)` decomposition of Figure 10).  We do
//! not need the chemistry, only a configuration with the same *computational* signature:
//! a dense cluster of "protein" atoms connected by chains of bonds, surrounded by "water"
//! molecules (three atoms, two bonds each), all placed in a periodic box at roughly liquid
//! density so that a 14 Å-style cutoff produces neighbour lists of realistic length.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters controlling the synthetic system.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Number of atoms in the dense "protein" cluster.
    pub protein_atoms: usize,
    /// Number of water molecules (3 atoms each).
    pub water_molecules: usize,
    /// Edge length of the cubic periodic box (arbitrary length units; think Ångström).
    pub box_size: f64,
    /// Cutoff radius for non-bonded interactions.
    pub cutoff: f64,
    /// RNG seed so every rank (and every run) builds the identical system.
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's benchmark scale: MbCO (≈ 2 536 protein atoms) + 3 830 waters
    /// = 14 026 atoms, 14 Å cutoff.
    pub fn paper_benchmark() -> Self {
        Self {
            protein_atoms: 2_536,
            water_molecules: 3_830,
            box_size: 55.0,
            cutoff: 14.0,
            seed: 1994,
        }
    }

    /// A small configuration for unit tests and quick examples.
    pub fn small(seed: u64) -> Self {
        Self {
            protein_atoms: 60,
            water_molecules: 80,
            box_size: 14.0,
            cutoff: 4.5,
            seed,
        }
    }

    /// Total number of atoms this configuration produces.
    pub fn total_atoms(&self) -> usize {
        self.protein_atoms + 3 * self.water_molecules
    }
}

/// A molecular system: positions, velocities, masses and the bonded topology.
#[derive(Debug, Clone)]
pub struct MolecularSystem {
    /// Per-atom position (x, y, z).
    pub positions: Vec<[f64; 3]>,
    /// Per-atom velocity.
    pub velocities: Vec<[f64; 3]>,
    /// Per-atom mass.
    pub masses: Vec<f64>,
    /// Bond list: pairs of atom indices (the `ib`/`jb` indirection arrays of Figure 2).
    pub bonds: Vec<(usize, usize)>,
    /// Periodic box edge length.
    pub box_size: f64,
    /// Non-bonded cutoff radius.
    pub cutoff: f64,
}

impl MolecularSystem {
    /// Build the synthetic system described by `config`.
    pub fn build(config: &SystemConfig) -> Self {
        let n = config.total_atoms();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut positions = Vec::with_capacity(n);
        let mut velocities = Vec::with_capacity(n);
        let mut masses = Vec::with_capacity(n);
        let mut bonds = Vec::new();

        // Protein: a random walk confined to the central third of the box, with chain
        // bonds between consecutive atoms and occasional cross-links (like a folded
        // backbone with side chains).
        let centre = config.box_size / 2.0;
        let spread = config.box_size / 6.0;
        let mut cursor = [centre, centre, centre];
        for i in 0..config.protein_atoms {
            for slot in &mut cursor {
                *slot += rng.gen_range(-1.2..1.2);
                let lo = centre - spread;
                let hi = centre + spread;
                *slot = slot.clamp(lo, hi);
            }
            positions.push(cursor);
            velocities.push([
                rng.gen_range(-0.05..0.05),
                rng.gen_range(-0.05..0.05),
                rng.gen_range(-0.05..0.05),
            ]);
            masses.push(12.0);
            if i > 0 {
                bonds.push((i - 1, i));
            }
            if i > 10 && rng.gen_bool(0.15) {
                let partner = rng.gen_range(0..i.saturating_sub(5));
                bonds.push((partner, i));
            }
        }

        // Water: three atoms per molecule (O + 2 H), placed uniformly in the box, with
        // two O–H bonds per molecule.
        for _ in 0..config.water_molecules {
            let o = [
                rng.gen_range(0.0..config.box_size),
                rng.gen_range(0.0..config.box_size),
                rng.gen_range(0.0..config.box_size),
            ];
            let o_index = positions.len();
            positions.push(o);
            velocities.push([
                rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.1..0.1),
            ]);
            masses.push(16.0);
            for h in 0..2 {
                let offset = 0.96;
                let angle = 1.91 * h as f64 + rng.gen_range(-0.1..0.1);
                let pos = [
                    (o[0] + offset * angle.cos()).rem_euclid(config.box_size),
                    (o[1] + offset * angle.sin()).rem_euclid(config.box_size),
                    (o[2] + offset * 0.3).rem_euclid(config.box_size),
                ];
                let h_index = positions.len();
                positions.push(pos);
                velocities.push([
                    rng.gen_range(-0.2..0.2),
                    rng.gen_range(-0.2..0.2),
                    rng.gen_range(-0.2..0.2),
                ]);
                masses.push(1.0);
                bonds.push((o_index, h_index));
            }
        }

        MolecularSystem {
            positions,
            velocities,
            masses,
            bonds,
            box_size: config.box_size,
            cutoff: config.cutoff,
        }
    }

    /// Number of atoms.
    pub fn natoms(&self) -> usize {
        self.positions.len()
    }

    /// Minimum-image displacement from atom `i` to atom `j` under periodic boundaries.
    pub fn displacement(&self, i: usize, j: usize) -> [f64; 3] {
        displacement_pbc(self.positions[i], self.positions[j], self.box_size)
    }
}

/// Minimum-image displacement between two positions in a cubic periodic box.
pub fn displacement_pbc(a: [f64; 3], b: [f64; 3], box_size: f64) -> [f64; 3] {
    let mut d = [0.0; 3];
    for k in 0..3 {
        let mut delta = b[k] - a[k];
        if delta > box_size / 2.0 {
            delta -= box_size;
        } else if delta < -box_size / 2.0 {
            delta += box_size;
        }
        d[k] = delta;
    }
    d
}

/// Squared length of a displacement vector.
pub fn dist2(d: [f64; 3]) -> f64 {
    d[0] * d[0] + d[1] * d[1] + d[2] * d[2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_benchmark_has_14026_atoms() {
        let cfg = SystemConfig::paper_benchmark();
        assert_eq!(cfg.total_atoms(), 14_026);
    }

    #[test]
    fn build_produces_consistent_arrays() {
        let cfg = SystemConfig::small(7);
        let sys = MolecularSystem::build(&cfg);
        assert_eq!(sys.natoms(), cfg.total_atoms());
        assert_eq!(sys.positions.len(), sys.velocities.len());
        assert_eq!(sys.positions.len(), sys.masses.len());
        assert!(!sys.bonds.is_empty());
        // All atoms inside the box, all bonds reference valid atoms.
        for p in &sys.positions {
            for d in 0..3 {
                assert!(
                    p[d] >= 0.0 && p[d] <= cfg.box_size,
                    "atom outside box: {p:?}"
                );
            }
        }
        for &(i, j) in &sys.bonds {
            assert!(i < sys.natoms() && j < sys.natoms());
            assert_ne!(i, j);
        }
    }

    #[test]
    fn build_is_deterministic_for_a_seed() {
        let cfg = SystemConfig::small(42);
        let a = MolecularSystem::build(&cfg);
        let b = MolecularSystem::build(&cfg);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.bonds, b.bonds);
        let c = MolecularSystem::build(&SystemConfig::small(43));
        assert_ne!(a.positions, c.positions);
    }

    #[test]
    fn water_molecules_add_two_bonds_each() {
        let cfg = SystemConfig {
            protein_atoms: 0,
            water_molecules: 10,
            box_size: 20.0,
            cutoff: 5.0,
            seed: 3,
        };
        let sys = MolecularSystem::build(&cfg);
        assert_eq!(sys.natoms(), 30);
        assert_eq!(sys.bonds.len(), 20);
    }

    #[test]
    fn periodic_displacement_uses_minimum_image() {
        let d = displacement_pbc([0.5, 0.0, 0.0], [9.5, 0.0, 0.0], 10.0);
        assert!((d[0] - (-1.0)).abs() < 1e-12);
        let d = displacement_pbc([1.0, 2.0, 3.0], [2.0, 3.0, 4.0], 10.0);
        assert_eq!(d, [1.0, 1.0, 1.0]);
        assert_eq!(dist2([3.0, 4.0, 0.0]), 25.0);
    }
}
