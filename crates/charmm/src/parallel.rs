//! The hand-parallelised CHAOS version of the CHARMM-like dynamics loop (§4.1 of the
//! paper).
//!
//! Every rank runs [`run_parallel`] inside an [`mpsim`] SPMD closure.  The structure
//! follows the paper's six phases:
//!
//! 1. **Data partitioning** — atoms are partitioned by RCB or RIB using spatial positions
//!    and per-atom computational weight (non-bonded list length), or left in the naive
//!    BLOCK distribution for comparison.
//! 2. **Data remapping** — coordinate, velocity and mass arrays are remapped to the new
//!    distribution with a single reusable [`chaos::remap::RemapPlan`].
//! 3. **Iteration partitioning** — the non-bonded loop uses owner-computes (iterate over
//!    owned atoms); the bonded loop uses almost-owner-computes over the bond list.
//! 4. **Iteration remapping** — the bonded indirection arrays move to their executing
//!    processors.
//! 5. **Inspector** — bonded and non-bonded indirection arrays are hashed into one stamped
//!    hash table; schedules are built merged (one schedule for all loops) or separate
//!    (Table 3 compares the two).
//! 6. **Executor** — per step: one *fused* gather brings `px`/`py`/`pz` ghosts in with a
//!    single message per processor pair, both force loops run, and one fused scatter-add
//!    pushes `fx`/`fy`/`fz` back the same way (3× fewer messages per schedule per step
//!    than the one-array-at-a-time executor).  With separate schedules the non-bonded
//!    gather is *split-phase*: its sends are posted before the bonded force loop, which
//!    computes while the exchange is in flight, and the ghosts land just before the
//!    non-bonded loop needs them.  Then integrate owned atoms.  Every
//!    `list_update_interval` steps the non-bonded list is regenerated, its stamp cleared
//!    and re-hashed (reusing the retained translation results) and the schedules rebuilt
//!    — the adaptive part.
//!
//! The per-phase modeled times the paper reports in Tables 1, 2, 3 and 6 are accumulated
//! in [`CharmmPhaseTimes`].

use chaos::adapt::{MonitorTopology, RemapController, RemapPolicy};
use chaos::prelude::*;
use mpsim::{ExchangeStats, Rank, TimeSnapshot};

use crate::bonds::bond_force;
use crate::integrate::integrate_atom;
use crate::nonbonded::{build_neighbor_list_for, pair_force, NeighborList};
use crate::system::{displacement_pbc, MolecularSystem};

/// Which data partitioner distributes the atoms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionerKind {
    /// Recursive coordinate bisection (the paper's default for CHARMM).
    Rcb,
    /// Recursive inertial bisection.
    Rib,
    /// Naive BLOCK distribution (no geometric partitioning) — the baseline.
    Block,
}

/// Whether the bonded and non-bonded loops share one merged communication schedule or use
/// one schedule per loop (the comparison of Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleMode {
    /// One merged schedule gathers/scatters the union of both loops' references.
    Merged,
    /// Each loop builds and executes its own schedule.
    Multiple,
}

/// Configuration of one parallel CHARMM run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Number of time steps to simulate.
    pub nsteps: usize,
    /// Steps between non-bonded list regenerations (the paper's benchmark: every 25).
    pub list_update_interval: usize,
    /// Data partitioner.
    pub partitioner: PartitionerKind,
    /// Schedule organisation.
    pub schedule_mode: ScheduleMode,
    /// If `Some(k)`, atoms are re-partitioned and re-mapped every `k` steps, alternating
    /// RCB and RIB as in the Table 6 experiment.  `None` partitions once at start-up.
    pub repartition_interval: Option<usize>,
    /// Opt-in feedback-driven repartitioning: when `Some`, a
    /// [`chaos::adapt::RemapController`] samples the per-rank executor compute time every
    /// step (one all-gather) and re-runs the configured partitioner whenever the policy
    /// fires, remapping every per-atom array through the same redistribution path the
    /// fixed-interval experiment uses.  Composes with `repartition_interval` (either
    /// trigger repartitions).
    pub adapt_policy: Option<RemapPolicy>,
    /// Monitoring topology for `adapt_policy` sampling: `None` uses the flat all-gather,
    /// `Some(g)` reduces executor-time samples to group leaders of size-`g` groups
    /// (O(log P) messages per step, reaching the same remap decisions as flat — see
    /// [`chaos::adapt::MonitorTopology`]).  Ignored when `adapt_policy` is `None`.
    pub monitor_group: Option<usize>,
}

impl ParallelConfig {
    /// The configuration used for Tables 1 and 2 (step count chosen by the caller).
    pub fn paper_default(nsteps: usize) -> Self {
        Self {
            nsteps,
            list_update_interval: 25,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        }
    }
}

/// Modeled time spent in each preprocessing/executor phase on this rank (microseconds,
/// split into communication and computation).
#[derive(Debug, Clone, Copy, Default)]
pub struct CharmmPhaseTimes {
    /// Phase A: running the data partitioner.
    pub data_partition: TimeSnapshot,
    /// Building/regenerating the non-bonded neighbour list.
    pub list_update: TimeSnapshot,
    /// Phases B and D: remapping data and indirection arrays.
    pub remap: TimeSnapshot,
    /// Phase E, first time: index analysis + initial schedule construction.
    pub schedule_generation: TimeSnapshot,
    /// Phase E, repeated: schedule regeneration after every list update.
    pub schedule_regeneration: TimeSnapshot,
    /// Phase F: force loops, gathers/scatters and integration.
    pub executor: TimeSnapshot,
    /// The remap controller's measurement collectives (executor-time sampling and remap
    /// cost recording); zero unless `adapt_policy` is set.
    pub monitor: TimeSnapshot,
}

impl CharmmPhaseTimes {
    /// Total modeled time across all phases.
    pub fn total(&self) -> TimeSnapshot {
        self.data_partition
            + self.list_update
            + self.remap
            + self.schedule_generation
            + self.schedule_regeneration
            + self.executor
            + self.monitor
    }
}

/// Per-run summary returned by [`run_parallel`].
#[derive(Debug, Clone)]
pub struct CharmmStepStats {
    /// Modeled per-phase times on this rank.
    pub phases: CharmmPhaseTimes,
    /// Pair interactions this rank evaluated (bonded + non-bonded).
    pub interactions: usize,
    /// Number of non-bonded list builds (including the initial one).
    pub list_updates: usize,
    /// Number of schedule (re)builds.
    pub schedule_builds: usize,
    /// Number of repartition + remap events after the initial partitioning (from the fixed
    /// interval, the adaptive controller, or both).  Includes the identity events below.
    pub repartitions: usize,
    /// Repartition events whose partitioner moved no atom on any rank: detected with one
    /// `all_reduce` and skipped — no redistribution, no list rebuild, no schedule work.
    pub identity_repartitions: usize,
    /// Hit/miss/patch/eviction counters of the schedule cache the inspector phases run
    /// through (see [`chaos::cache::ScheduleCache`]).
    pub cache_stats: CacheStats,
    /// The load-balance index of the executor phase at every step the controller observed
    /// (identical on every rank; empty unless `adapt_policy` is set).
    pub lb_trajectory: Vec<f64>,
    /// Engine message/byte counts of the executor phase on this rank, summed over all
    /// steps — what the fused gather/scatter paths actually put on the wire.
    pub executor_exchange: ExchangeStats,
    /// Messages one executor step sends under the *current* (last-built) schedules: one
    /// fused gather message per destination plus one fused scatter message per source,
    /// summed over the step's schedules.  With the fused multi-array executor this price
    /// is per step, not per array — `executor_exchange.msgs_sent` stays at
    /// `steps × step_send_messages` instead of `3×` that.
    pub step_send_messages: usize,
    /// Final positions of the atoms this rank owns, keyed by global atom index.
    pub owned_positions: Vec<(usize, [f64; 3])>,
}

/// Marker type grouping the parallel driver's entry points.
pub struct ParallelCharmm;

impl ParallelCharmm {
    /// Run the hand-parallelised simulation on the calling rank.  Collective: every rank
    /// of the machine must call it with the same `system` and `config`.
    pub fn run(
        rank: &mut Rank,
        system: &MolecularSystem,
        config: &ParallelConfig,
    ) -> CharmmStepStats {
        run_parallel(rank, system, config)
    }
}

// Stamps used in the shared hash table.
const STAMP_IB: Stamp = Stamp::new(0);
const STAMP_JB: Stamp = Stamp::new(1);
const STAMP_NB: Stamp = Stamp::new(2);

/// Per-atom state under the current (irregular) distribution.
struct DistributionState {
    ttable: TranslationTable,
    owned_globals: Vec<usize>,
    px: Vec<f64>,
    py: Vec<f64>,
    pz: Vec<f64>,
    vx: Vec<f64>,
    vy: Vec<f64>,
    vz: Vec<f64>,
    mass: Vec<f64>,
}

/// The bonded loop's executing-processor view (recomputed only when the atom distribution
/// changes — the bond list itself is static).
struct BondedSetup {
    exec_ib: Vec<usize>,
    exec_jb: Vec<usize>,
}

/// Local references and schedules for the current hash-table contents.
struct LoopState {
    ghost_len: usize,
    bond_refs: Vec<(LocalRef, LocalRef)>,
    nb_refs: Vec<Vec<LocalRef>>,
    merged: Option<CommSchedule>,
    bonded: Option<CommSchedule>,
    nonbonded: Option<CommSchedule>,
}

impl LoopState {
    /// Messages one executor step sends on this rank: per schedule, one fused gather
    /// message per destination (`send_message_count`) and one fused scatter message per
    /// source (`recv_message_count`).
    fn step_send_messages(&self) -> usize {
        self.merged
            .iter()
            .chain(self.bonded.iter())
            .chain(self.nonbonded.iter())
            .map(|s| s.send_message_count() + s.recv_message_count())
            .sum()
    }
}

/// Position and force arrays the executor step works on, kept across time steps so the
/// steady-state loop performs no per-step allocations: together with the engine's
/// send/receive buffer pools this makes a whole CHARMM time step allocation-free once
/// warm.  Positions are refreshed from the distribution state each step (the integrator
/// writes back there); forces are re-zeroed.
struct StepArrays {
    px: DistArray<f64>,
    py: DistArray<f64>,
    pz: DistArray<f64>,
    fx: DistArray<f64>,
    fy: DistArray<f64>,
    fz: DistArray<f64>,
}

impl StepArrays {
    fn new() -> Self {
        StepArrays {
            px: DistArray::zeroed(0, 0),
            py: DistArray::zeroed(0, 0),
            pz: DistArray::zeroed(0, 0),
            fx: DistArray::zeroed(0, 0),
            fy: DistArray::zeroed(0, 0),
            fz: DistArray::zeroed(0, 0),
        }
    }

    /// Prepare the arrays for one step: owned sections sized to the current distribution
    /// (reallocating only when a repartition changed the owned count), ghost regions grown
    /// to the current schedules' requirement, positions copied in, forces zeroed.
    fn refresh(&mut self, dist: &DistributionState, ghost: usize) {
        let owned = dist.owned_globals.len();
        if self.px.owned_len() != owned {
            self.px = DistArray::new(dist.px.clone(), ghost);
            self.py = DistArray::new(dist.py.clone(), ghost);
            self.pz = DistArray::new(dist.pz.clone(), ghost);
            self.fx = DistArray::zeroed(owned, ghost);
            self.fy = DistArray::zeroed(owned, ghost);
            self.fz = DistArray::zeroed(owned, ghost);
            return;
        }
        for (arr, src) in [
            (&mut self.px, &dist.px),
            (&mut self.py, &dist.py),
            (&mut self.pz, &dist.pz),
        ] {
            arr.ensure_ghost(ghost);
            arr.owned_mut().copy_from_slice(src);
        }
        for f in [&mut self.fx, &mut self.fy, &mut self.fz] {
            f.ensure_ghost(ghost);
            f.owned_mut().fill(0.0);
            f.clear_ghost();
        }
    }
}

/// The hand-parallelised CHARMM driver (see module docs).
pub fn run_parallel(
    rank: &mut Rank,
    system: &MolecularSystem,
    config: &ParallelConfig,
) -> CharmmStepStats {
    let natoms = system.natoms();
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let mut phases = CharmmPhaseTimes::default();
    let mut interactions = 0usize;
    let mut list_updates = 0usize;
    let mut schedule_builds = 0usize;

    // ---------------------------------------------------------------- initial partition --
    let block = BlockDist::new(natoms, nprocs);
    let my_block: Vec<usize> = block.local_globals(me).collect();
    // Global positions start out replicated (every rank built the same system).
    let mut global_positions: Vec<[f64; 3]> = system.positions.clone();

    let t0 = rank.modeled();
    let initial_list =
        build_neighbor_list_for(&my_block, &global_positions, system.box_size, system.cutoff);
    rank.charge_compute(initial_list.interaction_count() as f64 * 0.3);
    let weights: Vec<f64> = (0..my_block.len())
        .map(|r| 1.0 + initial_list.partners_of(r).len() as f64)
        .collect();
    phases.list_update += rank.modeled().since(&t0);
    list_updates += 1;

    let t0 = rank.modeled();
    let coords: Vec<[f64; 3]> = my_block.iter().map(|&g| global_positions[g]).collect();
    let local_map = run_partitioner(
        rank,
        config.partitioner,
        &coords,
        &weights,
        my_block.len(),
        nprocs,
    );
    phases.data_partition += rank.modeled().since(&t0);

    // ------------------------------------------------------------------ remap to owners --
    let t0 = rank.modeled();
    let mut dist = build_distribution(rank, system, &local_map, &block);
    let mut bonded = partition_bonded_loop(rank, &dist.ttable, system);
    phases.remap += rank.modeled().since(&t0);

    // -------------------------------------------------- inspector (initial schedules) --
    let t0 = rank.modeled();
    let mut nb_list = build_local_nb_list(rank, &dist, system, &mut global_positions);
    phases.list_update += rank.modeled().since(&t0);

    let t0 = rank.modeled();
    let mut hash = IndexHashTable::new(me, dist.ttable.local_size(me));
    // Schedules are served through a stamp-keyed cache: a bonded schedule whose stamps
    // did not advance since the last build is a hit (no communication at all), and a
    // drifted non-bonded/merged schedule is patched forward instead of rebuilt.
    let mut cache = ScheduleCache::new(4);
    let mut loops = build_loop_state(
        rank,
        &mut cache,
        &mut hash,
        &dist.ttable,
        &bonded,
        &nb_list,
        config.schedule_mode,
        true,
        None,
    );
    phases.schedule_generation += rank.modeled().since(&t0);
    schedule_builds += 1;

    // Executor working arrays, reused across every time step.
    let mut step_arrays = StepArrays::new();
    let mut executor_exchange = ExchangeStats::default();

    // Feedback-driven repartitioning (opt-in): the controller observes the executor phase
    // at the end of every step; a firing decision is honoured at the start of the next
    // step, where the full repartition + rebuild machinery already lives.
    let mut controller = config.adapt_policy.clone().map(|policy| {
        let ctrl = RemapController::new(policy);
        match config.monitor_group {
            Some(group) => ctrl.with_topology(MonitorTopology::Hierarchical { group }),
            None => ctrl,
        }
    });
    let mut adaptive_due = false;
    let mut repartitions = 0usize;
    let mut identity_repartitions = 0usize;

    // ----------------------------------------------------------------------- time steps --
    for step in 0..config.nsteps {
        // Repartition when the fixed interval (Table 6 alternates RCB and RIB every 25
        // steps) or the adaptive controller says so.
        let interval_due =
            matches!(config.repartition_interval, Some(k) if step > 0 && step % k == 0);
        let repartitioned = if interval_due || adaptive_due {
            let t0 = rank.modeled();
            let kind = match config.repartition_interval {
                // The Table 6 experiment alternates partitioners on its fixed cadence.
                Some(k) if interval_due && (step / k) % 2 == 1 => PartitionerKind::Rib,
                Some(_) if interval_due => PartitionerKind::Rcb,
                // The adaptive path re-runs the configured partitioner (re-RCB by default).
                _ => config.partitioner,
            };
            let weights: Vec<f64> = (0..dist.owned_globals.len())
                .map(|l| 1.0 + nb_list.partners_of(l).len() as f64)
                .collect();
            let coords: Vec<[f64; 3]> = (0..dist.owned_globals.len())
                .map(|l| [dist.px[l], dist.py[l], dist.pz[l]])
                .collect();
            let parts = run_partitioner(rank, kind, &coords, &weights, coords.len(), nprocs);
            // Identity detection: if no rank would send any atom anywhere, the partitioner
            // reproduced the current distribution and the whole redistribution — data
            // remap, bonded re-setup, list rebuild, hash recreation, schedule rebuild —
            // can be skipped.  One all-reduce makes the decision machine-wide.
            let moved_here = parts.iter().filter(|&&p| p != me).count();
            let identity = rank.all_reduce_sum_usize(moved_here) == 0;
            phases.data_partition += rank.modeled().since(&t0);
            repartitions += 1;
            let was_adaptive = adaptive_due;
            adaptive_due = false;
            if identity {
                identity_repartitions += 1;
                if let Some(ctrl) = controller.as_mut() {
                    if !was_adaptive {
                        ctrl.note_external_remap();
                    }
                    // Keep the controller's (collective) bookkeeping in step: the remap
                    // happened from its point of view, it just moved nothing.
                    let t0 = rank.modeled();
                    ctrl.record_remap(rank, 0, 0.0);
                    phases.monitor += rank.modeled().since(&t0);
                }
                false
            } else {
                let bytes_before = rank.stats().bytes_sent;
                let t0 = rank.modeled();
                dist = redistribute(rank, &dist, &parts, natoms);
                bonded = partition_bonded_loop(rank, &dist.ttable, system);
                let remap_cost = rank.modeled().since(&t0);
                phases.remap += remap_cost;
                if let Some(ctrl) = controller.as_mut() {
                    if !was_adaptive {
                        // The repartition came from the fixed interval, not the
                        // controller: the imbalance accumulated on the old distribution
                        // must not argue for an immediate second remap of the new one.
                        ctrl.note_external_remap();
                    }
                    let t0 = rank.modeled();
                    ctrl.record_remap(
                        rank,
                        rank.stats().bytes_sent - bytes_before,
                        remap_cost.total_us(),
                    );
                    phases.monitor += rank.modeled().since(&t0);
                }
                true
            }
        } else {
            false
        };

        // Periodic non-bonded list regeneration (the adaptive part).
        let list_due = step > 0 && step % config.list_update_interval == 0;
        if repartitioned || list_due {
            let t0 = rank.modeled();
            nb_list = build_local_nb_list(rank, &dist, system, &mut global_positions);
            phases.list_update += rank.modeled().since(&t0);
            list_updates += 1;

            let t0 = rank.modeled();
            if repartitioned {
                // The distribution changed: every translation result is stale, and the
                // cached schedules built from the old table can never be asked for again.
                cache.retire_table(&hash);
                hash = IndexHashTable::new(me, dist.ttable.local_size(me));
            } else {
                // Same distribution: keep the hash entries, just clear the adaptive stamp.
                hash.clear_stamp(STAMP_NB);
            }
            let prev_bond_refs = (!repartitioned).then(|| std::mem::take(&mut loops.bond_refs));
            loops = build_loop_state(
                rank,
                &mut cache,
                &mut hash,
                &dist.ttable,
                &bonded,
                &nb_list,
                config.schedule_mode,
                repartitioned,
                prev_bond_refs,
            );
            phases.schedule_regeneration += rank.modeled().since(&t0);
            schedule_builds += 1;
        }

        // ---------------------------------------------------------------- executor step --
        let t0 = rank.modeled();
        let (step_interactions, step_exchange) = execute_step(
            rank,
            &mut dist,
            &loops,
            &mut step_arrays,
            system,
            config.schedule_mode,
        );
        interactions += step_interactions;
        executor_exchange = executor_exchange.merged(&step_exchange);
        phases.executor += rank.modeled().since(&t0);

        // Feed the step's measured executor compute time to the controller.  `t0` was
        // taken just before the executor phase and nothing has charged compute since it
        // ended, so the gathered sample is exactly this step's executor compute.
        if let Some(ctrl) = controller.as_mut() {
            let tm = rank.modeled();
            adaptive_due = ctrl.observe_phase(rank, &t0).remap;
            phases.monitor += rank.modeled().since(&tm);
        }
    }

    let owned_positions = dist
        .owned_globals
        .iter()
        .enumerate()
        .map(|(l, &g)| (g, [dist.px[l], dist.py[l], dist.pz[l]]))
        .collect();

    CharmmStepStats {
        phases,
        interactions,
        list_updates,
        schedule_builds,
        repartitions,
        identity_repartitions,
        cache_stats: cache.stats(),
        lb_trajectory: controller
            .map(|c| c.lb_trajectory().to_vec())
            .unwrap_or_default(),
        executor_exchange,
        step_send_messages: loops.step_send_messages(),
        owned_positions,
    }
}

/// Phase A: run the configured partitioner over this rank's current atoms and return the
/// new owner of each of them.
fn run_partitioner(
    rank: &mut Rank,
    kind: PartitionerKind,
    coords: &[[f64; 3]],
    weights: &[f64],
    local_count: usize,
    nprocs: usize,
) -> Vec<usize> {
    match kind {
        PartitionerKind::Rcb => rcb_partition(rank, PartitionInput::new(coords, weights), nprocs),
        PartitionerKind::Rib => rib_partition(rank, PartitionInput::new(coords, weights), nprocs),
        PartitionerKind::Block => vec![rank.rank(); local_count],
    }
}

/// Phase B: build the translation table for the new owner map and remap the per-atom data
/// arrays from the block distribution to it.
fn build_distribution(
    rank: &mut Rank,
    system: &MolecularSystem,
    local_map: &[usize],
    block: &BlockDist,
) -> DistributionState {
    let mut ttable = TranslationTable::replicated_from_map(rank, local_map, block)
        .expect("partitioner returned an invalid owner");
    let my_block: Vec<usize> = block.local_globals(rank.rank()).collect();
    let plan = build_remap(rank, &my_block, &mut ttable);
    let take = |f: &dyn Fn(usize) -> f64| -> Vec<f64> { my_block.iter().map(|&g| f(g)).collect() };
    let px = remap_values(rank, &plan, &take(&|g| system.positions[g][0]), 0.0);
    let py = remap_values(rank, &plan, &take(&|g| system.positions[g][1]), 0.0);
    let pz = remap_values(rank, &plan, &take(&|g| system.positions[g][2]), 0.0);
    let vx = remap_values(rank, &plan, &take(&|g| system.velocities[g][0]), 0.0);
    let vy = remap_values(rank, &plan, &take(&|g| system.velocities[g][1]), 0.0);
    let vz = remap_values(rank, &plan, &take(&|g| system.velocities[g][2]), 0.0);
    let mass = remap_values(rank, &plan, &take(&|g| system.masses[g]), 1.0);
    let owned_globals = ttable.owned_globals(rank);
    DistributionState {
        ttable,
        owned_globals,
        px,
        py,
        pz,
        vx,
        vy,
        vz,
        mass,
    }
}

/// Re-partitioning path: move the *current* per-atom state (not the initial system) to a
/// new distribution described by `parts[l]` = new owner of this rank's l-th owned atom.
fn redistribute(
    rank: &mut Rank,
    old: &DistributionState,
    parts: &[usize],
    natoms: usize,
) -> DistributionState {
    // `replicated_from_map` expects the map block-distributed over the global atom index
    // space, so route each (atom, new owner) pair to the rank holding that block entry.
    let nprocs = rank.nprocs();
    let block = BlockDist::new(natoms, nprocs);
    let mut sends: Vec<Vec<(u64, u64)>> = vec![Vec::new(); nprocs];
    for (l, &g) in old.owned_globals.iter().enumerate() {
        sends[block.owner(g)].push((g as u64, parts[l] as u64));
    }
    let received = rank.all_to_all(&sends);
    let my_range = block.local_range(rank.rank());
    let mut local_map = vec![0usize; my_range.len()];
    for (g, owner) in received.into_iter().flatten() {
        local_map[g as usize - my_range.start] = owner as usize;
    }
    let mut ttable = TranslationTable::replicated_from_map(rank, &local_map, &block)
        .expect("repartitioner returned an invalid owner");
    let plan = build_remap(rank, &old.owned_globals, &mut ttable);
    let px = remap_values(rank, &plan, &old.px, 0.0);
    let py = remap_values(rank, &plan, &old.py, 0.0);
    let pz = remap_values(rank, &plan, &old.pz, 0.0);
    let vx = remap_values(rank, &plan, &old.vx, 0.0);
    let vy = remap_values(rank, &plan, &old.vy, 0.0);
    let vz = remap_values(rank, &plan, &old.vz, 0.0);
    let mass = remap_values(rank, &plan, &old.mass, 1.0);
    let owned_globals = ttable.owned_globals(rank);
    DistributionState {
        ttable,
        owned_globals,
        px,
        py,
        pz,
        vx,
        vy,
        vz,
        mass,
    }
}

/// Phases C and D for the bonded loop: assign each bond to the processor owning the
/// majority of its two atoms (almost-owner-computes) and move the `ib`/`jb` entries there.
fn partition_bonded_loop(
    rank: &mut Rank,
    ttable: &TranslationTable,
    system: &MolecularSystem,
) -> BondedSetup {
    let nprocs = rank.nprocs();
    let me = rank.rank();
    let nbonds = system.bonds.len();
    let bond_block = BlockDist::new(nbonds, nprocs);
    let my_bond_block: Vec<usize> = bond_block.local_globals(me).collect();
    let accesses: Vec<Vec<usize>> = my_bond_block
        .iter()
        .map(|&b| vec![system.bonds[b].0, system.bonds[b].1])
        .collect();
    let part = almost_owner_computes_replicated(rank, ttable, bond_block, &accesses);
    let plan = part.remap_plan(rank);
    let my_ib: Vec<usize> = my_bond_block.iter().map(|&b| system.bonds[b].0).collect();
    let my_jb: Vec<usize> = my_bond_block.iter().map(|&b| system.bonds[b].1).collect();
    BondedSetup {
        exec_ib: part.remap_indirection(rank, &plan, &my_ib),
        exec_jb: part.remap_indirection(rank, &plan, &my_jb),
    }
}

/// Regenerate the non-bonded neighbour list for the atoms this rank owns.  Requires the
/// current global positions, which are assembled with an all-gather of (global id,
/// position) — the communication the paper charges to "non-bonded list update".
fn build_local_nb_list(
    rank: &mut Rank,
    dist: &DistributionState,
    system: &MolecularSystem,
    global_positions: &mut [[f64; 3]],
) -> NeighborList {
    let packed: Vec<[f64; 4]> = dist
        .owned_globals
        .iter()
        .enumerate()
        .map(|(l, &g)| [g as f64, dist.px[l], dist.py[l], dist.pz[l]])
        .collect();
    let gathered = rank.all_gather(&packed);
    for part in gathered {
        for entry in part {
            global_positions[entry[0] as usize] = [entry[1], entry[2], entry[3]];
        }
    }
    let list = build_neighbor_list_for(
        &dist.owned_globals,
        global_positions,
        system.box_size,
        system.cutoff,
    );
    // The cell-grid search is the (parallel) sequential cost the paper reports shrinking
    // with the processor count.
    rank.charge_compute(
        dist.owned_globals.len() as f64 * 2.0 + list.interaction_count() as f64 * 0.3,
    );
    list
}

/// Phase E: hash every indirection array into the stamped hash table and serve the
/// communication schedules through the stamp-keyed cache.  When `rehash_bonded` is false
/// the bonded entries are assumed to be present already (same distribution, stamps
/// intact): the previous bonded references are reused verbatim, which leaves the bonded
/// stamp generations untouched — so under [`ScheduleMode::Multiple`] the bonded schedule
/// is a cache *hit* across non-bonded list updates (no communication at all), while the
/// schedules covering the re-hashed non-bonded stamp are *patched* forward.
#[allow(clippy::too_many_arguments)]
fn build_loop_state(
    rank: &mut Rank,
    cache: &mut ScheduleCache,
    hash: &mut IndexHashTable,
    ttable: &TranslationTable,
    bonded: &BondedSetup,
    nb_list: &NeighborList,
    mode: ScheduleMode,
    rehash_bonded: bool,
    prev_bond_refs: Option<Vec<(LocalRef, LocalRef)>>,
) -> LoopState {
    let bond_refs: Vec<(LocalRef, LocalRef)> = match prev_bond_refs {
        Some(refs) if !rehash_bonded && !hash.is_empty() => refs,
        _ => {
            let ib_refs = hash.hash_in_replicated(rank, ttable, &bonded.exec_ib, STAMP_IB);
            let jb_refs = hash.hash_in_replicated(rank, ttable, &bonded.exec_jb, STAMP_JB);
            ib_refs.into_iter().zip(jb_refs).collect()
        }
    };

    let owned = ttable.local_size(rank.rank());
    let mut nb_refs: Vec<Vec<LocalRef>> = Vec::with_capacity(owned);
    for l in 0..nb_list.natoms() {
        let refs = hash.hash_in_replicated(rank, ttable, nb_list.partners_of(l), STAMP_NB);
        nb_refs.push(refs);
    }

    let (merged, bonded_sched, nonbonded_sched) = match mode {
        ScheduleMode::Merged => {
            let merged = cache
                .schedule(
                    rank,
                    hash,
                    StampQuery::any_of(&[STAMP_IB, STAMP_JB, STAMP_NB]),
                )
                .0
                .clone();
            (Some(merged), None, None)
        }
        ScheduleMode::Multiple => {
            let b = cache
                .schedule(rank, hash, StampQuery::any_of(&[STAMP_IB, STAMP_JB]))
                .0
                .clone();
            let nb = cache
                .schedule(rank, hash, StampQuery::single(STAMP_NB))
                .0
                .clone();
            (None, Some(b), Some(nb))
        }
    };

    LoopState {
        ghost_len: hash.ghost_len(),
        bond_refs,
        nb_refs,
        merged,
        bonded: bonded_sched,
        nonbonded: nonbonded_sched,
    }
}

/// One executor time step: gather positions (fused — `px`/`py`/`pz` travel in one
/// message per processor pair), evaluate both force loops, scatter-add the forces
/// (fused the same way) and integrate the owned atoms.  With separate schedules the
/// non-bonded gather is split-phase: posted before the bonded loop, finished after it —
/// the bonded forces compute while the non-bonded ghosts are in flight.  Returns the
/// number of pair interactions this rank evaluated and the engine stats of the step's
/// transfers.  The working arrays live in `arrays` and are reused across steps.
fn execute_step(
    rank: &mut Rank,
    dist: &mut DistributionState,
    loops: &LoopState,
    arrays: &mut StepArrays,
    system: &MolecularSystem,
    mode: ScheduleMode,
) -> (usize, ExchangeStats) {
    let ghost = loops.ghost_len;
    let owned = dist.owned_globals.len();
    arrays.refresh(dist, ghost);
    let StepArrays {
        px,
        py,
        pz,
        fx,
        fy,
        fz,
    } = arrays;

    let mut interactions = 0usize;

    // One closure per force loop so the two schedule organisations can interleave them
    // with communication differently.
    let bonded_loop = |px: &DistArray<f64>,
                       py: &DistArray<f64>,
                       pz: &DistArray<f64>,
                       fx: &mut DistArray<f64>,
                       fy: &mut DistArray<f64>,
                       fz: &mut DistArray<f64>|
     -> usize {
        let mut count = 0;
        for &(ri, rj) in &loops.bond_refs {
            let a = [px[ri], py[ri], pz[ri]];
            let b = [px[rj], py[rj], pz[rj]];
            let f = bond_force(displacement_pbc(a, b, system.box_size));
            fx[ri] += f[0];
            fy[ri] += f[1];
            fz[ri] += f[2];
            fx[rj] -= f[0];
            fy[rj] -= f[1];
            fz[rj] -= f[2];
            count += 1;
        }
        count
    };
    let nonbonded_loop = |px: &DistArray<f64>,
                          py: &DistArray<f64>,
                          pz: &DistArray<f64>,
                          fx: &mut DistArray<f64>,
                          fy: &mut DistArray<f64>,
                          fz: &mut DistArray<f64>|
     -> usize {
        let mut count = 0;
        for (l, partners) in loops.nb_refs.iter().enumerate() {
            let ri = LocalRef(l);
            let a = [px[ri], py[ri], pz[ri]];
            for &rj in partners {
                let b = [px[rj], py[rj], pz[rj]];
                let f = pair_force(displacement_pbc(a, b, system.box_size));
                fx[ri] += f[0];
                fy[ri] += f[1];
                fz[ri] += f[2];
                fx[rj] -= f[0];
                fy[rj] -= f[1];
                fz[rj] -= f[2];
                count += 1;
            }
        }
        count
    };

    let mut exchange = ExchangeStats::default();
    match mode {
        ScheduleMode::Merged => {
            // One schedule covers both loops: one fused gather moves all three position
            // arrays (one message per pair), both loops run, one fused scatter-add moves
            // all three force arrays back.
            let sched = loops.merged.as_ref().expect("merged schedule missing");
            exchange = exchange.merged(&gather_multi(rank, sched, [px, py, pz]));
            interactions += bonded_loop(px, py, pz, fx, fy, fz);
            interactions += nonbonded_loop(px, py, pz, fx, fy, fz);
            rank.charge_compute(interactions as f64);
            exchange = exchange.merged(&scatter_add_multi(rank, sched, [fx, fy, fz]));
        }
        ScheduleMode::Multiple => {
            // Each loop gathers with its own schedule and scatters its own contributions.
            // The non-bonded gather is split-phase: its sends are posted right after the
            // bonded ghosts land, the bonded force loop and bonded scatter-add run while
            // it is in flight, and its ghosts are placed just before the non-bonded loop
            // needs them.  (Position ghost slots the two schedules share are rewritten
            // with the same values — the owned positions do not change until the
            // integration below.)  The ghost *force* slots are shared between the
            // schedules too (they come from the same hash table), so they are cleared
            // between the two scatters to avoid folding a contribution back twice.
            let bsched = loops.bonded.as_ref().expect("bonded schedule missing");
            let nsched = loops
                .nonbonded
                .as_ref()
                .expect("non-bonded schedule missing");
            exchange = exchange.merged(&gather_multi(rank, bsched, [px, py, pz]));
            let nb_gather = gather_start(rank, nsched, [&*px, &*py, &*pz]);
            let b_count = bonded_loop(px, py, pz, fx, fy, fz);
            rank.charge_compute(b_count as f64);
            interactions += b_count;
            exchange = exchange.merged(&scatter_add_multi(rank, bsched, [fx, fy, fz]));
            fx.clear_ghost();
            fy.clear_ghost();
            fz.clear_ghost();

            exchange = exchange.merged(&gather_finish(rank, nb_gather, nsched, [px, py, pz]));
            let n_count = nonbonded_loop(px, py, pz, fx, fy, fz);
            rank.charge_compute(n_count as f64);
            interactions += n_count;
            exchange = exchange.merged(&scatter_add_multi(rank, nsched, [fx, fy, fz]));
        }
    }

    // Integrate the owned atoms.
    for l in 0..owned {
        let mut pos = [px.owned()[l], py.owned()[l], pz.owned()[l]];
        let mut vel = [dist.vx[l], dist.vy[l], dist.vz[l]];
        let force = [fx.owned()[l], fy.owned()[l], fz.owned()[l]];
        integrate_atom(&mut pos, &mut vel, force, dist.mass[l], system.box_size);
        dist.px[l] = pos[0];
        dist.py[l] = pos[1];
        dist.pz[l] = pos[2];
        dist.vx[l] = vel[0];
        dist.vy[l] = vel[1];
        dist.vz[l] = vel[2];
    }
    rank.charge_compute(owned as f64 * 0.5);

    (interactions, exchange)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::SequentialCharmm;
    use crate::system::SystemConfig;
    use mpsim::{run, CostModel, MachineConfig};

    fn parallel_positions(nprocs: usize, config: ParallelConfig, seed: u64) -> Vec<[f64; 3]> {
        let sys_cfg = SystemConfig::small(seed);
        let natoms = sys_cfg.total_atoms();
        let out = run(MachineConfig::new(nprocs), move |rank| {
            let system = MolecularSystem::build(&sys_cfg);
            run_parallel(rank, &system, &config).owned_positions
        });
        let mut positions = vec![[f64::NAN; 3]; natoms];
        for per_rank in &out.results {
            for &(g, p) in per_rank {
                assert!(positions[g][0].is_nan(), "atom {g} owned by two ranks");
                positions[g] = p;
            }
        }
        assert!(
            positions.iter().all(|p| !p[0].is_nan()),
            "some atom unowned"
        );
        positions
    }

    fn sequential_positions(nsteps: usize, update: usize, seed: u64) -> Vec<[f64; 3]> {
        let sys = MolecularSystem::build(&SystemConfig::small(seed));
        let mut sim = SequentialCharmm::new(sys, update);
        sim.run(nsteps);
        sim.system.positions
    }

    fn max_deviation(a: &[[f64; 3]], b: &[[f64; 3]]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (0..3).map(|k| (x[k] - y[k]).abs()).fold(0.0f64, f64::max))
            .fold(0.0f64, f64::max)
    }

    #[test]
    fn parallel_matches_sequential_rcb_merged() {
        let config = ParallelConfig {
            nsteps: 8,
            list_update_interval: 4,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let par = parallel_positions(4, config, 5);
        let seq = sequential_positions(8, 4, 5);
        let dev = max_deviation(&par, &seq);
        assert!(dev < 1e-6, "parallel deviates from sequential by {dev}");
    }

    #[test]
    fn parallel_matches_sequential_multiple_schedules_and_block() {
        let config = ParallelConfig {
            nsteps: 6,
            list_update_interval: 3,
            partitioner: PartitionerKind::Block,
            schedule_mode: ScheduleMode::Multiple,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let par = parallel_positions(3, config, 9);
        let seq = sequential_positions(6, 3, 9);
        let dev = max_deviation(&par, &seq);
        assert!(dev < 1e-6, "parallel deviates from sequential by {dev}");
    }

    #[test]
    fn parallel_matches_sequential_with_repartitioning() {
        let config = ParallelConfig {
            nsteps: 8,
            list_update_interval: 4,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: Some(4),
            adapt_policy: None,
            monitor_group: None,
        };
        let par = parallel_positions(4, config, 13);
        let seq = sequential_positions(8, 4, 13);
        let dev = max_deviation(&par, &seq);
        assert!(dev < 1e-6, "parallel deviates from sequential by {dev}");
    }

    #[test]
    fn adaptive_repartitioning_preserves_the_trajectory() {
        // Feedback-driven re-RCB: a low threshold guarantees the controller fires at
        // least once on a 4-rank run, and redistribution must not perturb the physics.
        let config = ParallelConfig {
            nsteps: 8,
            list_update_interval: 4,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: Some(chaos::adapt::RemapPolicy::Threshold {
                lb_index: 1.01,
                hysteresis: 0.0,
                patience: 0,
            }),
            monitor_group: None,
        };
        let par = parallel_positions(4, config, 5);
        let seq = sequential_positions(8, 4, 5);
        let dev = max_deviation(&par, &seq);
        assert!(
            dev < 1e-6,
            "adaptive parallel deviates from sequential by {dev}"
        );
    }

    #[test]
    fn adaptive_controller_reports_trajectory_and_repartitions() {
        let sys_cfg = SystemConfig::small(8);
        let config = ParallelConfig {
            nsteps: 6,
            list_update_interval: 3,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: Some(chaos::adapt::RemapPolicy::Threshold {
                lb_index: 1.01,
                hysteresis: 0.0,
                patience: 0,
            }),
            monitor_group: None,
        };
        let out = run(MachineConfig::new(4), move |rank| {
            let system = MolecularSystem::build(&sys_cfg);
            let stats = run_parallel(rank, &system, &config);
            (stats.lb_trajectory, stats.repartitions)
        });
        let (reference, repartitions) = &out.results[0];
        assert_eq!(reference.len(), 6, "one observation per step");
        assert!(reference.iter().all(|lb| lb.is_finite() && *lb >= 1.0));
        assert!(*repartitions > 0, "a 1.01 threshold must fire");
        for (traj, reps) in &out.results {
            assert_eq!(traj, reference, "trajectory must be replicated");
            assert_eq!(reps, repartitions);
        }
    }

    #[test]
    fn hierarchical_monitoring_matches_flat_repartitions() {
        // Group-leader monitoring must fire the controller at exactly the same steps the
        // flat all-gather does, and the physics must stay on the sequential trajectory.
        // Trajectories are compared to relative 1e-9: the monitoring exchange charges
        // pack/unpack compute, which shifts the f64 base the executor samples are
        // measured against by a few ulps.
        let make = |monitor_group: Option<usize>| ParallelConfig {
            nsteps: 6,
            list_update_interval: 3,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: Some(chaos::adapt::RemapPolicy::Threshold {
                lb_index: 1.01,
                hysteresis: 0.0,
                patience: 0,
            }),
            monitor_group,
        };
        let run_one = |cfg: ParallelConfig| {
            let sys_cfg = SystemConfig::small(10);
            let out = run(MachineConfig::new(6), move |rank| {
                let system = MolecularSystem::build(&sys_cfg);
                let stats = run_parallel(rank, &system, &cfg);
                (stats.lb_trajectory, stats.repartitions)
            });
            out.results.into_iter().next().unwrap()
        };
        let (flat_traj, flat_reps) = run_one(make(None));
        for group in [2, 3] {
            let (traj, reps) = run_one(make(Some(group)));
            assert_eq!(reps, flat_reps, "group {group}: repartition count diverged");
            assert_eq!(traj.len(), flat_traj.len());
            for (x, y) in flat_traj.iter().zip(&traj) {
                assert!(
                    (x - y).abs() <= 1e-9 * x.abs(),
                    "group {group}: lb sample diverged: {x} vs {y}"
                );
            }
        }
        assert!(flat_reps > 0, "a 1.01 threshold must fire");
        let par = parallel_positions(6, make(Some(2)), 5);
        let seq = sequential_positions(6, 3, 5);
        let dev = max_deviation(&par, &seq);
        assert!(dev < 1e-6, "hierarchical run off trajectory by {dev}");
    }

    #[test]
    fn without_a_policy_the_monitor_is_inert() {
        let sys_cfg = SystemConfig::small(12);
        let config = ParallelConfig::paper_default(4);
        let out = run(MachineConfig::new(3), move |rank| {
            let system = MolecularSystem::build(&sys_cfg);
            let stats = run_parallel(rank, &system, &config);
            (
                stats.lb_trajectory.len(),
                stats.repartitions,
                stats.phases.monitor.total_us(),
            )
        });
        for (traj_len, reps, monitor_us) in &out.results {
            assert_eq!(*traj_len, 0);
            assert_eq!(*reps, 0);
            assert_eq!(*monitor_us, 0.0);
        }
    }

    #[test]
    fn single_rank_run_matches_sequential() {
        let config = ParallelConfig {
            nsteps: 5,
            list_update_interval: 2,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let par = parallel_positions(1, config, 3);
        let seq = sequential_positions(5, 2, 3);
        let dev = max_deviation(&par, &seq);
        assert!(dev < 1e-9, "single-rank parallel deviates by {dev}");
    }

    #[test]
    fn work_is_distributed_and_phases_are_populated() {
        let sys_cfg = SystemConfig::small(20);
        let config = ParallelConfig::paper_default(6);
        let out = run(
            MachineConfig::new(4).with_cost(CostModel::ipsc860()),
            move |rank| {
                let system = MolecularSystem::build(&sys_cfg);
                let stats = run_parallel(rank, &system, &config);
                (
                    stats.interactions,
                    stats.phases.executor.total_us(),
                    stats.phases.data_partition.total_us(),
                    stats.phases.schedule_generation.total_us(),
                    stats.list_updates,
                )
            },
        );
        let total_interactions: usize = out.results.iter().map(|r| r.0).sum();
        assert!(total_interactions > 0);
        for (inter, exec_us, part_us, sched_us, updates) in &out.results {
            assert!(*inter > 0, "a rank evaluated no interactions");
            assert!(*exec_us > 0.0);
            assert!(*part_us > 0.0);
            assert!(*sched_us > 0.0);
            assert_eq!(*updates, 1);
        }
        let times: Vec<f64> = out.results.iter().map(|r| r.1).collect();
        assert!(chaos::load_balance_index(&times) < 2.0);
    }

    #[test]
    fn fused_executor_sends_one_message_per_pair_per_schedule_per_step() {
        // The acceptance pin of the fused multi-array executor: per step, each schedule
        // moves ONE gather message per destination and ONE scatter message per source —
        // not one per position/force array.  `step_send_messages` is derived from
        // `CommSchedule::send_message_count` / `recv_message_count`, so this compares the
        // engine's measured traffic against the schedule's promise.
        let sys_cfg = SystemConfig::small(7);
        for mode in [ScheduleMode::Merged, ScheduleMode::Multiple] {
            let config = ParallelConfig {
                nsteps: 4,
                list_update_interval: 10, // never updated: the schedules stay constant
                partitioner: PartitionerKind::Rcb,
                schedule_mode: mode,
                repartition_interval: None,
                adapt_policy: None,
                monitor_group: None,
            };
            let cfg = sys_cfg.clone();
            let out = run(MachineConfig::new(4), move |rank| {
                let system = MolecularSystem::build(&cfg);
                let stats = run_parallel(rank, &system, &config);
                (stats.executor_exchange, stats.step_send_messages)
            });
            for (p, (exchange, step_msgs)) in out.results.iter().enumerate() {
                assert!(*step_msgs > 0, "rank {p} exchanges nothing with 4 ranks");
                assert_eq!(
                    exchange.msgs_sent as usize,
                    4 * step_msgs,
                    "rank {p} ({mode:?}): executor sent more messages than one fused \
                     gather + one fused scatter per schedule per step"
                );
            }
        }
    }

    #[test]
    fn merged_schedules_send_fewer_messages_than_multiple() {
        // Table 3's mechanism: merging the bonded and non-bonded schedules removes
        // duplicate fetches and message start-ups.
        let sys_cfg = SystemConfig::small(33);
        let run_mode = |mode: ScheduleMode| {
            let config = ParallelConfig {
                nsteps: 4,
                list_update_interval: 10,
                partitioner: PartitionerKind::Rcb,
                schedule_mode: mode,
                repartition_interval: None,
                adapt_policy: None,
                monitor_group: None,
            };
            let cfg = sys_cfg.clone();
            let out = run(MachineConfig::new(4), move |rank| {
                let system = MolecularSystem::build(&cfg);
                let _ = run_parallel(rank, &system, &config);
                rank.stats().msgs_sent
            });
            out.results.iter().sum::<u64>()
        };
        let merged = run_mode(ScheduleMode::Merged);
        let multiple = run_mode(ScheduleMode::Multiple);
        assert!(
            merged < multiple,
            "merged schedules should send fewer messages ({merged} vs {multiple})"
        );
    }

    #[test]
    fn bonded_schedule_is_served_from_cache_across_list_updates() {
        // Under ScheduleMode::Multiple the bonded schedule's stamps do not advance when
        // only the non-bonded list regenerates, so the cache must serve it as a hit (no
        // communication) while the non-bonded schedule is patched forward.
        let sys_cfg = SystemConfig::small(26);
        let config = ParallelConfig {
            nsteps: 9,
            list_update_interval: 3,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Multiple,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let cfg = config.clone();
        let out = run(MachineConfig::new(4), move |rank| {
            let system = MolecularSystem::build(&sys_cfg);
            let stats = run_parallel(rank, &system, &cfg);
            (stats.cache_stats, stats.schedule_builds)
        });
        for (cache, builds) in &out.results {
            assert_eq!(*builds, 3, "initial + regenerations at steps 3 and 6");
            assert_eq!(cache.misses, 2, "first build misses once per schedule");
            assert_eq!(
                cache.hits, 2,
                "bonded schedule must hit on both regenerations"
            );
            assert_eq!(
                cache.patches, 2,
                "non-bonded schedule must patch, not rebuild"
            );
            assert_eq!(cache.evictions, 0);
        }
        let par = parallel_positions(4, config, 26);
        let seq = sequential_positions(9, 3, 26);
        let dev = max_deviation(&par, &seq);
        assert!(dev < 1e-6, "cached-schedule run deviates by {dev}");
    }

    #[test]
    fn identity_repartitions_are_detected_and_skipped() {
        // A BLOCK partitioner always reproduces the current distribution, so every
        // adaptive firing is an identity repartition: counted, but skipping the
        // redistribution, list rebuild and schedule work entirely.
        let sys_cfg = SystemConfig::small(15);
        let config = ParallelConfig {
            nsteps: 6,
            list_update_interval: 3,
            partitioner: PartitionerKind::Block,
            schedule_mode: ScheduleMode::Multiple,
            repartition_interval: None,
            adapt_policy: Some(chaos::adapt::RemapPolicy::Threshold {
                lb_index: 1.01,
                hysteresis: 0.0,
                patience: 0,
            }),
            monitor_group: None,
        };
        let cfg = config.clone();
        let out = run(MachineConfig::new(4), move |rank| {
            let system = MolecularSystem::build(&sys_cfg);
            let stats = run_parallel(rank, &system, &cfg);
            (
                stats.repartitions,
                stats.identity_repartitions,
                stats.cache_stats,
                stats.list_updates,
                stats.schedule_builds,
            )
        });
        let (reps, idents, cache, updates, builds) = out.results[0];
        assert!(
            reps > 0,
            "a 1.01 threshold over a BLOCK distribution must fire"
        );
        assert_eq!(
            idents, reps,
            "BLOCK repartitions move nothing: all identity"
        );
        assert_eq!(
            updates, 2,
            "identity repartitions must not force list rebuilds"
        );
        assert_eq!(builds, 2, "initial + the step-3 list update only");
        // The step-3 regeneration runs against the same distribution: bonded hit,
        // non-bonded patch.
        assert!(cache.hits >= 1);
        assert!(cache.patches >= 1);
        assert_eq!(cache.evictions, 0);
        for r in &out.results {
            assert_eq!(*r, out.results[0], "skip decisions must be replicated");
        }
        let par = parallel_positions(4, config, 15);
        let seq = sequential_positions(6, 3, 15);
        let dev = max_deviation(&par, &seq);
        assert!(dev < 1e-6, "identity-skip run deviates by {dev}");
    }

    #[test]
    fn schedule_regeneration_is_cheaper_than_initial_generation() {
        // The hash table retains translation results between list updates, so the
        // regeneration pass (clear stamp + rehash + rebuild) must not exceed the initial
        // schedule generation cost.
        let sys_cfg = SystemConfig::small(44);
        let config = ParallelConfig {
            nsteps: 9,
            list_update_interval: 3,
            partitioner: PartitionerKind::Rcb,
            schedule_mode: ScheduleMode::Merged,
            repartition_interval: None,
            adapt_policy: None,
            monitor_group: None,
        };
        let out = run(MachineConfig::new(4), move |rank| {
            let system = MolecularSystem::build(&sys_cfg);
            let stats = run_parallel(rank, &system, &config);
            (
                stats.phases.schedule_generation.compute_us,
                stats.phases.schedule_regeneration.compute_us,
                stats.schedule_builds,
            )
        });
        for (initial, regen, builds) in &out.results {
            // Two regenerations (steps 3 and 6) — each should cost no more than the
            // initial build (which had to translate every index from scratch).
            assert_eq!(*builds, 3);
            assert!(
                *regen <= *initial * 2.2,
                "regeneration ({regen}) should not exceed twice the initial generation ({initial})"
            );
        }
    }
}
