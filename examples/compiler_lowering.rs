//! Compile-time support (§5 of the paper): compile a Fortran-D program that uses an
//! irregular distribution, a `REDUCE(SUM)` loop and the proposed `REDUCE(APPEND)`
//! intrinsic, then execute the lowered inspector/executor plan on the simulated machine.
//!
//! Run with `cargo run --release --example compiler_lowering`.

use chaos_suite::fortrand::{compile, Executor, LoopKind};
use chaos_suite::mpsim::{run, MachineConfig};

fn main() {
    let nparticles = 600;
    let ncells = 64;
    let source = format!(
        "C Figure 9/11-style particle movement plus the per-cell count loop\n\
         REAL vel({np}), newvel({nc}), load({nc})\n\
         INTEGER icell({np})\n\
         C$ DECOMPOSITION parts({np})\n\
         C$ DECOMPOSITION cells({nc})\n\
         C$ DISTRIBUTE parts(BLOCK)\n\
         C$ DISTRIBUTE cells(BLOCK)\n\
         C$ ALIGN vel WITH parts\n\
         C$ ALIGN newvel, load WITH cells\n\
         FORALL i = 1, {np}\n\
         REDUCE(APPEND, newvel(icell(i)), vel(i))\n\
         END FORALL\n\
         FORALL i = 1, {np}\n\
         REDUCE(SUM, load(icell(i)), 1)\n\
         END FORALL\n",
        np = nparticles,
        nc = ncells
    );

    println!(
        "Fortran-D source ({} lines):\n{}",
        source.lines().count(),
        source
    );
    let lowered = compile(&source).expect("program compiles");
    println!("Lowered loops:");
    for plan in &lowered.loops {
        let kind = match &plan.kind {
            LoopKind::SumReduction => "inspector/executor reduction".to_string(),
            LoopKind::AppendReduction { target } => {
                format!("light-weight append into {target}")
            }
            LoopKind::IntegerUpdate { modified } => {
                format!("local integer update of {modified:?}")
            }
        };
        println!(
            "  loop #{}: {kind}; gathers {:?}, scatter-adds {:?}, schedule depends on {:?}",
            plan.loop_id, plan.gathered_arrays, plan.sum_targets, plan.indirection_arrays
        );
    }

    let nprocs = 4;
    let outcome = run(MachineConfig::new(nprocs), move |rank| {
        let lowered = compile(&source).expect("program compiles");
        let mut exec = Executor::new(rank, &lowered);
        let icell: Vec<i64> = (0..nparticles)
            .map(|i| ((i * 13) % ncells + 1) as i64)
            .collect();
        exec.set_integer_array("ICELL", &icell);
        exec.set_real_array(
            "VEL",
            &(0..nparticles).map(|i| i as f64).collect::<Vec<_>>(),
        );
        exec.set_real_array("LOAD", &vec![0.0; ncells]);
        exec.run_all(rank);
        let sizes = exec.bucket_sizes(rank, "NEWVEL");
        let load = exec.get_real_array(rank, "LOAD");
        (sizes, load, exec.phases())
    });

    let (sizes, load, phases) = &outcome.results[0];
    let total_appended: usize = sizes.iter().sum();
    let total_load: f64 = load.iter().sum();
    println!("\nExecuted on {nprocs} simulated processors:");
    println!("  molecules appended into cells: {total_appended} (expected {nparticles})");
    println!("  total load accumulated:        {total_load} (expected {nparticles})");
    println!(
        "  modeled time: remap {:.2} ms, inspector {:.2} ms, executor {:.2} ms",
        phases.remap.total_us() / 1e3,
        phases.inspector.total_us() / 1e3,
        phases.executor.total_us() / 1e3
    );
    assert_eq!(total_appended, nparticles);
    assert!((total_load - nparticles as f64).abs() < 1e-9);
    println!("  OK");
}
