//! Quickstart: the irregular loop of Figure 1 of the paper, parallelised with the CHAOS
//! inspector/executor.
//!
//! ```text
//! do i = 1, n
//!    x(ia(i)) = x(ia(i)) + y(ib(i))
//! end do
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use chaos_suite::chaos::prelude::*;
use chaos_suite::mpsim::{run, MachineConfig};

fn main() {
    let n = 1_000;
    let nprocs = 8;
    // Indirection arrays known only "at run time".
    let ia: Vec<usize> = (0..n).map(|i| (i * 17 + 3) % n).collect();
    let ib: Vec<usize> = (0..n).map(|i| (i * 29 + 11) % n).collect();
    let ia_for_check = ia.clone();
    let ib_for_check = ib.clone();

    let outcome = run(MachineConfig::new(nprocs), move |rank| {
        // Phase A/B: x and y are BLOCK-distributed (a partitioner could be used instead).
        let dist = BlockDist::new(n, rank.nprocs());
        let ttable = TranslationTable::from_regular(&dist);

        // Phase C/D: this rank executes the iterations whose index it owns.
        let my_iters: Vec<usize> = dist.local_globals(rank.rank()).collect();
        let my_ia: Vec<usize> = my_iters.iter().map(|&i| ia[i]).collect();
        let my_ib: Vec<usize> = my_iters.iter().map(|&i| ib[i]).collect();

        // Phase E (inspector): translate indices, remove duplicates, build one merged
        // communication schedule for both access patterns.
        let mut inspector = Inspector::new(&ttable, rank.rank());
        let refs_a = inspector.hash_indices(rank, &my_ia, Stamp::new(0));
        let refs_b = inspector.hash_indices(rank, &my_ib, Stamp::new(1));
        let sched =
            inspector.build_schedule(rank, StampQuery::any_of(&[Stamp::new(0), Stamp::new(1)]));

        // Phase F (executor): gather off-processor y values, run the loop, scatter-add
        // the off-processor x contributions back to their owners.
        let owned = dist.local_size(rank.rank());
        let mut x = DistArray::new(vec![1.0f64; owned], sched.ghost_len());
        let mut y = DistArray::new(
            dist.local_globals(rank.rank()).map(|g| g as f64).collect(),
            sched.ghost_len(),
        );
        gather(rank, &sched, &mut y);
        for (ra, rb) in refs_a.iter().zip(&refs_b) {
            let contribution = y[*rb];
            x[*ra] += contribution;
        }
        scatter_add(rank, &sched, &mut x);

        // Report the locally owned slice of x together with its global indices.
        let globals: Vec<usize> = dist.local_globals(rank.rank()).collect();
        (globals, x.owned().to_vec(), rank.stats(), rank.modeled())
    });

    // Stitch the distributed result together and verify against a sequential evaluation.
    let mut x_parallel = vec![0.0f64; n];
    for (globals, values, _, _) in &outcome.results {
        for (g, v) in globals.iter().zip(values) {
            x_parallel[*g] = *v;
        }
    }
    let mut x_seq = vec![1.0f64; n];
    for i in 0..n {
        x_seq[ia_for_check[i]] += ib_for_check[i] as f64;
    }
    let max_err = x_parallel
        .iter()
        .zip(&x_seq)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);

    println!("CHAOS-RS quickstart: x(ia(i)) += y(ib(i)) on {nprocs} simulated processors");
    println!("  elements: {n}, iterations: {n}");
    println!("  max |parallel - sequential| = {max_err:.3e}");
    let stats = outcome.machine_stats();
    println!(
        "  messages sent: {}, bytes moved: {}, modeled time (max over ranks): {:.2} ms",
        stats.total_messages(),
        stats.total_bytes(),
        outcome.max_total_us() / 1000.0
    );
    assert!(max_err < 1e-9);
    println!("  OK");
}
