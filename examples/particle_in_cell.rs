//! A DSMC-style particle-in-cell run (§2.2/§4.2 of the paper): light-weight schedules for
//! the per-step MOVE phase and periodic chain-partitioner remapping to follow the
//! directional flow.
//!
//! Run with `cargo run --release --example particle_in_cell`.

use chaos_suite::dsmc::{
    parallel::run_parallel, seed_particles, CellGrid, DsmcConfig, FlowConfig, MoveMode,
    RemapStrategy,
};
use chaos_suite::mpsim::{run, MachineConfig};

fn main() {
    let nprocs = 8;
    let grid = CellGrid::new_2d(32, 16);
    let nparticles = 8_000;
    let nsteps = 40;
    let flow = FlowConfig::directional(7);
    println!(
        "DSMC-like particle-in-cell: {}x{} cells, {nparticles} molecules, {nsteps} steps, {nprocs} simulated processors",
        grid.nx, grid.ny
    );
    println!("  (directional flow: most molecules drift along +x, so load piles up downstream)");

    for (label, remap) in [
        ("static partition", RemapStrategy::Static),
        (
            "chain partitioner, remapped every 10 steps",
            RemapStrategy::Chain,
        ),
    ] {
        let config = DsmcConfig {
            nsteps,
            dt: 0.4,
            move_mode: MoveMode::Lightweight,
            remap,
            remap_interval: 10,
            policy: None,
            monitor_group: None,
            seed: 7,
        };
        let outcome = run(MachineConfig::new(nprocs), move |rank| {
            let particles = seed_particles(&grid, nparticles, &flow);
            run_parallel(rank, &grid, &particles, &config)
        });
        let total: usize = outcome.results.iter().map(|s| s.final_particle_count).sum();
        assert_eq!(total, nparticles, "molecules must be conserved");
        let collide: Vec<f64> = outcome
            .results
            .iter()
            .map(|s| s.phases.collide.compute_us)
            .collect();
        let migrations: usize = outcome.results.iter().map(|s| s.migrations).sum();
        println!("  {label}:");
        println!(
            "    modeled execution time (max over ranks): {:.2} ms, load balance index: {:.2}, molecules migrated: {}",
            outcome.max_total_us() / 1e3,
            chaos_suite::chaos::load_balance_index(&collide),
            migrations
        );
    }
    println!("  OK");
}
