//! An adaptive molecular-dynamics run (CHARMM-like, §2.1/§4.1 of the paper): RCB
//! partitioning of atoms, merged schedules for the bonded and non-bonded loops, and
//! periodic non-bonded list regeneration with schedule reuse.
//!
//! Run with `cargo run --release --example molecular_dynamics`.

use chaos_suite::charmm::parallel::{ParallelConfig, PartitionerKind, ScheduleMode};
use chaos_suite::charmm::system::{MolecularSystem, SystemConfig};
use chaos_suite::charmm::{ParallelCharmm, SequentialCharmm};
use chaos_suite::mpsim::{run, MachineConfig};

fn main() {
    let nprocs = 8;
    let nsteps = 10;
    let update_every = 5;
    let sys_cfg = SystemConfig {
        protein_atoms: 400,
        water_molecules: 500,
        box_size: 24.0,
        cutoff: 6.0,
        seed: 42,
    };
    println!(
        "CHARMM-like adaptive MD: {} atoms, {nsteps} steps, non-bonded list regenerated every {update_every} steps, {nprocs} simulated processors",
        sys_cfg.total_atoms()
    );

    let config = ParallelConfig {
        nsteps,
        list_update_interval: update_every,
        partitioner: PartitionerKind::Rcb,
        schedule_mode: ScheduleMode::Merged,
        repartition_interval: None,
        adapt_policy: None,
        monitor_group: None,
    };
    let cfg = sys_cfg.clone();
    let outcome = run(MachineConfig::new(nprocs), move |rank| {
        let system = MolecularSystem::build(&cfg);
        ParallelCharmm::run(rank, &system, &config)
    });

    // Sequential reference for a correctness spot check.
    let mut reference = SequentialCharmm::new(MolecularSystem::build(&sys_cfg), update_every);
    reference.run(nsteps);
    let mut max_dev = 0.0f64;
    for stats in &outcome.results {
        for &(g, p) in &stats.owned_positions {
            for (k, pk) in p.iter().enumerate() {
                max_dev = max_dev.max((pk - reference.system.positions[g][k]).abs());
            }
        }
    }

    println!("  per-rank phase breakdown (modeled milliseconds):");
    println!(
        "  {:>4} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "rank", "partition", "list update", "sched gen", "sched regen", "executor"
    );
    for (r, stats) in outcome.results.iter().enumerate() {
        let ph = &stats.phases;
        println!(
            "  {:>4} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            r,
            ph.data_partition.total_us() / 1e3,
            ph.list_update.total_us() / 1e3,
            ph.schedule_generation.total_us() / 1e3,
            ph.schedule_regeneration.total_us() / 1e3,
            ph.executor.total_us() / 1e3,
        );
    }
    let exec_times: Vec<f64> = outcome
        .results
        .iter()
        .map(|s| s.phases.executor.compute_us)
        .collect();
    println!(
        "  load balance index: {:.3}",
        chaos_suite::chaos::load_balance_index(&exec_times)
    );
    println!("  max deviation from the sequential trajectory: {max_dev:.3e}");
    assert!(max_dev < 1e-6);
    println!("  OK");
}
