C BLOCKED-OPT FIXTURE — the second sweep gathers F, the array the first
C sweep scatter-adds into: a flow dependence through the exchange.  The
C fusion analysis must keep the loops in separate schedules (a fused
C gather would read F before the first loop's contributions arrive), and
C the overlap analysis must not start the second gather early for the
C same reason.  The builds still hoist: IA and IB are loop-invariant.
C Expected: blocked fuse, blocked overlap, applied hoist, no findings.
      REAL x(32), f(32), g(32)
      INTEGER ia(32), ib(32)
C$ DECOMPOSITION reg(32)
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, f, g WITH reg
      DO istep = 1, 5
      FORALL i = 1, 32
      REDUCE(SUM, f(ia(i)), x(ib(i)))
      END FORALL
      FORALL i = 1, 32
      REDUCE(SUM, g(ia(i)), f(ib(i)))
      END FORALL
      END DO
