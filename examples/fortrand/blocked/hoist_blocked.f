C BLOCKED-OPT FIXTURE — the indirection array IA is rewritten inside the
C time loop, so the schedule-reuse analysis must NOT hoist the inspector:
C the build stays inside the DO, stamp-guarded, and the schedule cache
C absorbs the rebuilds.  The same write also pins the integer update in
C place — it cannot slide into the gather window it invalidates.
C Expected: blocked hoist, blocked overlap, no findings.
      REAL x(32), f(32)
      INTEGER ia(32)
C$ DECOMPOSITION reg(32)
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, f WITH reg
      DO istep = 1, 5
      FORALL i = 1, 32
      REDUCE(SUM, f(ia(i)), x(i))
      END FORALL
      FORALL i = 1, 32
      ia(i) = ia(i) - (ia(i) / 32) * 32 + 1
      END FORALL
      END DO
