C DSMC particle move (Figure 11 of the paper): REDUCE(APPEND) routes each
C particle's value to its destination cell with a light-weight schedule.
      REAL vel(128), newvel(32)
      INTEGER icell(128)
C$ DECOMPOSITION parts(128)
C$ DECOMPOSITION cells(32)
C$ DISTRIBUTE parts(BLOCK)
C$ DISTRIBUTE cells(BLOCK)
C$ ALIGN vel WITH parts
C$ ALIGN newvel WITH cells
      FORALL i = 1, 128
      REDUCE(APPEND, newvel(icell(i)), vel(i))
      END FORALL
