C DSMC particle move (Figure 11 of the paper), time-stepped: each step
C REDUCE(APPEND) routes every particle's value to its destination cell
C with a light-weight schedule, then the cell assignment drifts — the
C adaptive case, so the light-weight schedule is rebuilt every step by
C construction (there is no inspector to hoist).
      REAL vel(128), newvel(32)
      INTEGER icell(128)
C$ DECOMPOSITION parts(128)
C$ DECOMPOSITION cells(32)
C$ DISTRIBUTE parts(BLOCK)
C$ DISTRIBUTE cells(BLOCK)
C$ ALIGN vel WITH parts
C$ ALIGN newvel WITH cells
      DO istep = 1, 8
      FORALL i = 1, 128
      REDUCE(APPEND, newvel(icell(i)), vel(i))
      END FORALL
      FORALL i = 1, 128
      icell(i) = icell(i) - (icell(i) / 32) * 32 + 1
      END FORALL
      END DO
