C Conditionals that are safe under the SPMD collective contract:
C  * a rank-INdependent guard (every rank takes the same branch), and
C  * a rank-dependent IF whose two paths issue identical collective
C    footprints (every rank joins the same sequence either way).
      REAL x(32)
      INTEGER ia(32)
C$ DECOMPOSITION reg(32)
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x WITH reg
      IF (NPROCS .GT. 1) THEN
C$ DISTRIBUTE reg(CYCLIC)
      END IF
      IF (MYRANK .EQ. 0) THEN
      FORALL i = 1, 32
      REDUCE(SUM, x(ia(i)), 1.0)
      END FORALL
      ELSE
      FORALL i = 1, 32
      REDUCE(SUM, x(ia(i)), 2.0)
      END FORALL
      END IF
