C SEEDED DIVERGENCE FIXTURE — must be FLAGGED by fortrand_check.
C Low ranks remap through the map array while high ranks go CYCLIC: the
C two DISTRIBUTE calls build different translation tables, so the ranks
C disagree on ownership from here on and every later exchange is wrong.
      REAL x(16)
      INTEGER map(16)
C$ DECOMPOSITION reg(16)
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x WITH reg
      IF (MYRANK .LT. 2) THEN
C$ DISTRIBUTE reg(map)
      ELSE
C$ DISTRIBUTE reg(CYCLIC)
      END IF
