C SEEDED DIVERGENCE FIXTURE — must be FLAGGED by fortrand_check.
C The FORALL lowers to collective gather/scatter_add calls, but only
C rank 0 reaches them: every other rank sails past while rank 0 blocks
C in a schedule build its peers never join.
      REAL x(16)
      INTEGER ia(16)
C$ DECOMPOSITION reg(16)
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x WITH reg
      IF (MYRANK .EQ. 0) THEN
      FORALL i = 1, 16
      REDUCE(SUM, x(ia(i)), 1.0)
      END FORALL
      END IF
