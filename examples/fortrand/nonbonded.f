C CHARMM-style non-bonded force loop (Figure 10 of the paper): a CSR
C neighbour list drives an irregular REDUCE(SUM) sweep after the atoms
C are remapped through a partitioner-produced map array.
      REAL x(64), dx(64)
      INTEGER map(64), inblo(65), jnb(128)
C$ DECOMPOSITION reg(64)
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, dx WITH reg
C$ DISTRIBUTE reg(map)
      FORALL i = 1, 64
      FORALL j = inblo(i), inblo(i+1) - 1
      REDUCE(SUM, dx(jnb(j)), x(jnb(j)) - x(i))
      REDUCE(SUM, dx(i), x(i) - x(jnb(j)))
      END FORALL
      END FORALL
