C CHARMM-style non-bonded force sweep (Figure 10 of the paper), now with
C the outer molecular-dynamics time loop: a CSR neighbour list drives
C three irregular REDUCE(SUM) sweeps (one per coordinate) after the atoms
C are remapped through a partitioner-produced map array.
C
C The compiler loop fires all three analyses here:
C  * fuse   — the X/Y/Z sweeps share a decomposition and iteration space
C             with no cross dependences, so they merge into one schedule
C             (one gather + one scatter-add moves all six arrays);
C  * hoist  — INBLO and JNB are never written inside the DO, so the
C             inspector runs once, before the time loop;
C  * overlap — the list-age counter update touches no indirection array
C             and slides between the gather's start and finish.
      REAL x(64), y(64), z(64), dx(64), dy(64), dz(64)
      INTEGER map(64), inblo(65), jnb(128), iage(64)
C$ DECOMPOSITION reg(64)
C$ DISTRIBUTE reg(BLOCK)
C$ ALIGN x, y, z, dx, dy, dz WITH reg
C$ DISTRIBUTE reg(map)
      DO istep = 1, 10
      FORALL i = 1, 64
      FORALL j = inblo(i), inblo(i+1) - 1
      REDUCE(SUM, dx(jnb(j)), x(jnb(j)) - x(i))
      REDUCE(SUM, dx(i), x(i) - x(jnb(j)))
      END FORALL
      END FORALL
      FORALL i = 1, 64
      FORALL j = inblo(i), inblo(i+1) - 1
      REDUCE(SUM, dy(jnb(j)), y(jnb(j)) - y(i))
      REDUCE(SUM, dy(i), y(i) - y(jnb(j)))
      END FORALL
      END FORALL
      FORALL i = 1, 64
      FORALL j = inblo(i), inblo(i+1) - 1
      REDUCE(SUM, dz(jnb(j)), z(jnb(j)) - z(i))
      REDUCE(SUM, dz(i), z(i) - z(jnb(j)))
      END FORALL
      END FORALL
      FORALL i = 1, 64
      iage(i) = iage(i) + 1
      END FORALL
      END DO
