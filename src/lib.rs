//! # chaos-suite — umbrella crate for the CHAOS-RS reproduction
//!
//! This crate re-exports the workspace members so the repository-level examples
//! (`examples/`) and integration tests (`tests/`) can use everything through one
//! dependency:
//!
//! * [`mpsim`] — the simulated distributed-memory message-passing machine and the
//!   unified all-to-allv exchange engine every data-movement primitive runs on;
//! * [`chaos`] — the CHAOS/PARTI runtime (translation tables, stamped index hashing,
//!   communication schedules, gather/scatter/scatter_append executors, remapping, data
//!   and iteration partitioners);
//! * [`charmm`] — the CHARMM-like molecular dynamics mini-application;
//! * [`dsmc`] — the DSMC particle-in-cell mini-application;
//! * [`fortrand`] — the mini Fortran-D front end, lowering pass and SPMD executor.
//!
//! See `README.md` for a tour and `DESIGN.md` for the system inventory (including the
//! design of the exchange engine); the `chaos-bench` crate regenerates every table of the
//! paper's evaluation section.

pub use chaos;
pub use charmm;
pub use dsmc;
pub use fortrand;
pub use mpsim;

/// The paper this workspace reproduces.
pub const PAPER: &str = "Sharma, Ponnusamy, Moon, Hwang, Das, Saltz: \
\"Run-time and compile-time support for adaptive irregular problems\", Supercomputing '94";

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        // A smoke test that the whole stack is reachable through the umbrella crate.
        let out = crate::mpsim::run(crate::mpsim::MachineConfig::new(2), |rank| {
            let dist = crate::chaos::BlockDist::new(8, rank.nprocs());
            crate::chaos::TranslationTable::from_regular(&dist).local_size(rank.rank())
        });
        assert_eq!(out.results, vec![4, 4]);
        assert!(crate::PAPER.contains("Supercomputing"));
    }
}
